"""Defect models: the ways a mercurial core computes wrong answers.

Each model reproduces a failure mode the paper reports (§2, §5):

- :class:`StuckBitDefect` — "repeated bit-flips in strings, at a
  particular bit position (which stuck out as unlikely to be coding
  bugs)".
- :class:`SboxPermutationDefect` — "a deterministic AES mis-computation,
  which was 'self-inverting': encrypting and decrypting on the same core
  yielded the identity function, but decryption elsewhere yielded
  gibberish".
- :class:`OperandPatternDefect` — "usually the implementation-level and
  environmental details have to line up.  Data patterns can affect
  corruption rates".
- :class:`SharedLogicDefect` — "the same mercurial core manifests CEEs
  both with certain data-copy operations and with certain vector
  operations ... both kinds of operations share the same hardware
  logic".
- :class:`AtomicsDefect` — "violations of lock semantics leading to
  application data corruption and crashes".
- :class:`MachineCheckDefect` — fail-noisy behaviour: "machine checks,
  which are more disruptive" but at least produce a logged signal.

Every defect combines a *targeting rule* (which operations flow through
the broken structure), a *base rate*, an environment sensitivity and an
aging profile.  ``apply`` perturbs a single executed operation;
``effective_rate`` exposes the same behaviour analytically so the fleet
simulator can run months of simulated time without executing ops.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import FrozenSet, Iterable, Sequence

import numpy as np

from repro.silicon.aging import IMMEDIATE, AgingProfile
from repro.silicon.environment import OperatingPoint
from repro.silicon.errors import MachineCheckError
from repro.silicon.sensitivity import EnvironmentSensitivity, FlatSensitivity
from repro.silicon.units import (
    FunctionalUnit,
    LogicBlock,
    Op,
    OP_UNIT,
    ops_touching,
    UNIT_OPS,
)


def resolve_target_ops(
    ops: Iterable[str] | None = None,
    unit: FunctionalUnit | None = None,
    block: LogicBlock | None = None,
) -> FrozenSet[str]:
    """Resolve a targeting spec into the concrete set of operations.

    Exactly one of ``ops``, ``unit`` or ``block`` must be given:
    explicit mnemonics, every op of a functional unit, or every op whose
    datapath crosses a shared logic block.
    """
    given = [x is not None for x in (ops, unit, block)]
    if sum(given) != 1:
        raise ValueError("specify exactly one of ops=, unit=, block=")
    if ops is not None:
        ops = frozenset(ops)
        unknown = ops - set(OP_UNIT)
        if unknown:
            raise ValueError(f"unknown operations: {sorted(unknown)}")
        return ops
    if unit is not None:
        return frozenset(UNIT_OPS[unit])
    assert block is not None
    return frozenset(ops_touching(block))


def flip_bit(value: int, bit: int) -> int:
    """Flip ``bit`` of a non-negative integer value."""
    return value ^ (1 << bit)


@dataclasses.dataclass(slots=True)
class CorruptionRecord:
    """Ground-truth record of one induced corruption (for accounting)."""

    defect_id: str
    op: str
    golden: object
    corrupted: object


class DefectModel(abc.ABC):
    """Base class for all defect models.

    Subclasses implement :meth:`_corrupt`, which receives the golden
    result and returns the corrupted one.  The base class owns
    targeting, probability, environment sensitivity and aging.
    """

    def __init__(
        self,
        defect_id: str,
        target_ops: FrozenSet[str],
        base_rate: float,
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        if not 0.0 <= base_rate <= 1.0:
            raise ValueError("base_rate must be a probability")
        if not target_ops:
            raise ValueError("defect must target at least one operation")
        self.defect_id = defect_id
        self.target_ops = target_ops
        self.base_rate = base_rate
        self.sensitivity = sensitivity or FlatSensitivity()
        self.aging = aging

    # -- analytic interface (used by the fleet-scale simulator) --------

    def targets(self, op: str) -> bool:
        """Whether ``op`` flows through this defect's broken structure."""
        return op in self.target_ops

    def trigger_fraction(self, op: str) -> float:
        """Fraction of operand space that can trigger the defect for ``op``.

        1.0 means any operands may be corrupted; pattern-gated defects
        override this with the measure of their trigger set.
        """
        return 1.0

    def effective_rate(
        self, op: str, env: OperatingPoint, age_days: float
    ) -> float:
        """Per-execution corruption probability for ``op`` at ``env``."""
        if not self.targets(op):
            return 0.0
        rate = (
            self.base_rate
            * self.trigger_fraction(op)
            * self.sensitivity.multiplier(env)
            * self.aging.rate_multiplier(age_days)
        )
        return min(rate, 1.0)

    def mean_rate(
        self,
        op_mix: dict[str, float],
        env: OperatingPoint,
        age_days: float,
    ) -> float:
        """Expected corruptions per operation under an operation mix."""
        return sum(
            fraction * self.effective_rate(op, env, age_days)
            for op, fraction in op_mix.items()
        )

    # -- sampled interface (used when actually executing work) ---------

    def apply(
        self,
        op: str,
        operands: tuple,
        result,
        env: OperatingPoint,
        age_days: float,
        rng: np.random.Generator,
    ):
        """Possibly perturb ``result``; returns the (maybe new) result.

        Raises:
            MachineCheckError: for fail-noisy defect models.
        """
        if not self.targets(op):
            return result
        if not self._triggered(op, operands):
            return result
        rate = (
            self.base_rate
            * self.sensitivity.multiplier(env)
            * self.aging.rate_multiplier(age_days)
        )
        # Wide operations expose every lane to the broken structure: a
        # 64-word block copy gets 64 chances to corrupt, not one.
        if isinstance(result, tuple) and len(result) > 1 and rate < 1.0:
            rate = 1.0 - (1.0 - rate) ** len(result)
        if rate < 1.0 and rng.random() >= rate:
            return result
        return self._corrupt(op, operands, result, rng)

    def _triggered(self, op: str, operands: tuple) -> bool:
        """Operand-pattern gate; default is always-triggered."""
        return True

    @abc.abstractmethod
    def _corrupt(self, op: str, operands: tuple, result, rng: np.random.Generator):
        """Return the corrupted result (golden result is ``result``)."""

    def describe(self) -> str:
        """One-line human description for logs and reports."""
        return (
            f"{type(self).__name__}({self.defect_id}: "
            f"{len(self.target_ops)} ops, base_rate={self.base_rate:g})"
        )

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


def _corrupt_scalar_or_vector(result, corrupt_lane, rng: np.random.Generator):
    """Apply a scalar corruption to a scalar or to one lane of a tuple."""
    if isinstance(result, tuple):
        if not result:
            return result
        lane = int(rng.integers(len(result)))
        lanes = list(result)
        lanes[lane] = corrupt_lane(lanes[lane])
        return tuple(lanes)
    if isinstance(result, int):
        return corrupt_lane(result)
    return result


class StuckBitDefect(DefectModel):
    """Flips (or forces) one fixed bit position of results.

    Models the "repeated bit-flips in strings, at a particular bit
    position" observation: the corruption is always at the same bit, so
    application-level symptoms show a suspicious fixed stride.
    """

    MODES = ("flip", "set", "clear")

    def __init__(
        self,
        defect_id: str,
        bit: int,
        mode: str = "flip",
        base_rate: float = 1e-6,
        ops: Iterable[str] | None = None,
        unit: FunctionalUnit | None = None,
        block: LogicBlock | None = None,
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}")
        if not 0 <= bit < 64:
            raise ValueError("bit must be in [0, 64)")
        if ops is None and unit is None and block is None:
            unit = FunctionalUnit.ALU
        super().__init__(
            defect_id,
            resolve_target_ops(ops, unit, block),
            base_rate,
            sensitivity,
            aging,
        )
        self.bit = bit
        self.mode = mode

    def _corrupt_lane(self, value: int) -> int:
        if self.mode == "flip":
            return flip_bit(value, self.bit)
        if self.mode == "set":
            return value | (1 << self.bit)
        return value & ~(1 << self.bit)

    def _corrupt(self, op, operands, result, rng):
        return _corrupt_scalar_or_vector(result, self._corrupt_lane, rng)


class SboxPermutationDefect(DefectModel):
    """Deterministic wrong S-box entries: the self-inverting AES defect.

    The physical intuition: the S-box structure decodes its input
    address through broken logic, so a forward lookup of ``x`` reads the
    entry for ``p(x)`` where ``p`` is a fixed transposition: the
    defective box computes ``S'(x) = S(p(x))``.  The *inverse* lookup is
    served by the same physical structure searched in reverse, so it
    computes the exact functional inverse of the defective forward box:
    ``I'(y) = S'^-1(y) = p^-1(S^-1(y))``.  Every encryption stage is
    therefore still inverted exactly by the same core's decryption —
    encrypt+decrypt on the defective core is the identity — while a
    healthy core's ``S^-1`` does not invert ``S'``, so decrypting
    elsewhere yields gibberish (§2's self-inverting AES anecdote).

    The defect is deterministic (``base_rate`` is 1 by construction);
    its *observable* rate is the probability an input hits a swapped
    entry, which :meth:`trigger_fraction` reports as ``len(swaps)/256``.
    """

    def __init__(
        self,
        defect_id: str,
        swaps: Sequence[tuple[int, int]] = ((0x3A, 0xC5),),
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        super().__init__(
            defect_id,
            resolve_target_ops(ops=(Op.SBOX, Op.INV_SBOX)),
            base_rate=1.0,
            sensitivity=sensitivity,
            aging=aging,
        )
        mapping = list(range(256))
        touched: set[int] = set()
        for a, b in swaps:
            if not (0 <= a < 256 and 0 <= b < 256):
                raise ValueError("swap entries must be bytes")
            if a in touched or b in touched or a == b:
                raise ValueError("swaps must be disjoint transpositions")
            touched.update((a, b))
            mapping[a], mapping[b] = mapping[b], mapping[a]
        self.permutation = tuple(mapping)
        self._swapped = frozenset(touched)

    def trigger_fraction(self, op: str) -> float:
        return len(self._swapped) / 256.0

    def _triggered(self, op: str, operands: tuple) -> bool:
        from repro.silicon.golden import AES_INV_SBOX

        value = operands[0] & 0xFF
        if op == Op.SBOX:
            return value in self._swapped
        # Inverse lookup is perturbed when its *golden output* is a
        # swapped address (p applied on the way out).
        return AES_INV_SBOX[value] in self._swapped

    def _corrupt(self, op, operands, result, rng):
        from repro.silicon.golden import AES_INV_SBOX, AES_SBOX

        value = operands[0] & 0xFF
        if op == Op.SBOX:
            return AES_SBOX[self.permutation[value]]
        # permutation is built from transpositions, so p == p^-1.
        return self.permutation[AES_INV_SBOX[value]]


class OperandPatternDefect(DefectModel):
    """Corruption gated on an operand bit pattern.

    Fires only when every operand matches ``(operand & mask) == value``;
    when it fires, XORs ``error`` into the result.  This models the
    paper's "usually the implementation-level and environmental details
    have to line up" — most data passes through correctly, one pattern
    reliably miscomputes.
    """

    def __init__(
        self,
        defect_id: str,
        mask: int,
        value: int,
        error: int = 1,
        base_rate: float = 1.0,
        ops: Iterable[str] | None = None,
        unit: FunctionalUnit | None = None,
        block: LogicBlock | None = None,
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        if ops is None and unit is None and block is None:
            unit = FunctionalUnit.MUL_DIV
        super().__init__(
            defect_id,
            resolve_target_ops(ops, unit, block),
            base_rate,
            sensitivity,
            aging,
        )
        self.mask = mask
        self.value = value & mask
        self.error = error

    def trigger_fraction(self, op: str) -> float:
        # Each masked bit must match: probability 2**-popcount(mask)
        # per operand under uniform data; approximate with one operand.
        matched_bits = bin(self.mask).count("1")
        return 2.0 ** (-matched_bits)

    def _triggered(self, op: str, operands: tuple) -> bool:
        scalars = [x for x in operands if isinstance(x, int)]
        if not scalars:
            return False
        return all((x & self.mask) == self.value for x in scalars)

    def _corrupt(self, op, operands, result, rng):
        return _corrupt_scalar_or_vector(
            result, lambda lane: lane ^ self.error, rng
        )


class SharedLogicDefect(DefectModel):
    """A defect in a logic block shared by several units (§5).

    Bound to a :class:`~repro.silicon.units.LogicBlock`; every op whose
    datapath crosses the block is at risk.  The canonical instance uses
    ``SHUFFLE_NETWORK``, afflicting both block copies and vector ops.
    """

    def __init__(
        self,
        defect_id: str,
        block: LogicBlock = LogicBlock.SHUFFLE_NETWORK,
        bit: int = 13,
        base_rate: float = 1e-5,
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        super().__init__(
            defect_id,
            resolve_target_ops(block=block),
            base_rate,
            sensitivity,
            aging,
        )
        self.block = block
        self.bit = bit

    def _corrupt(self, op, operands, result, rng):
        return _corrupt_scalar_or_vector(
            result, lambda lane: flip_bit(lane, self.bit), rng
        )


class AtomicsDefect(DefectModel):
    """Violates lock/atomic semantics (§2).

    On a triggered CAS the broken comparator reports success regardless
    of the expected value (spurious success → mutual exclusion
    violated); on FETCH_ADD the addend is dropped (lost update); on
    XCHG the store is dropped (a lock release that never lands →
    deadlock).  Applications built on these primitives exhibit
    corrupted shared state and crashes — exactly the "violations of
    lock semantics leading to application data corruption and crashes"
    symptom.
    """

    def __init__(
        self,
        defect_id: str,
        base_rate: float = 1e-4,
        ops: Iterable[str] | None = None,
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        """``ops`` restricts the defect to a subset of the atomics unit
        (e.g. only XCHG — a broken store path on the release side)."""
        if ops is None:
            targets = resolve_target_ops(unit=FunctionalUnit.ATOMICS)
        else:
            targets = resolve_target_ops(ops=ops)
            atomics = resolve_target_ops(unit=FunctionalUnit.ATOMICS)
            if not targets <= atomics:
                raise ValueError("AtomicsDefect ops must be atomic operations")
        super().__init__(defect_id, targets, base_rate, sensitivity, aging)

    def _corrupt(self, op, operands, result, rng):
        if op == Op.CAS:
            # Broken comparator: swap "succeeds" regardless of expected.
            return operands[2]
        if op == Op.FETCH_ADD:
            return operands[0]  # addend dropped (lost update)
        if op == Op.XCHG:
            return operands[0]  # store dropped (release never lands)
        return result


class MachineCheckDefect(DefectModel):
    """Fail-noisy defect: raises a machine check instead of corrupting."""

    def __init__(
        self,
        defect_id: str,
        base_rate: float = 1e-6,
        ops: Iterable[str] | None = None,
        unit: FunctionalUnit | None = None,
        block: LogicBlock | None = None,
        sensitivity: EnvironmentSensitivity | None = None,
        aging: AgingProfile = IMMEDIATE,
    ):
        if ops is None and unit is None and block is None:
            unit = FunctionalUnit.LOAD_STORE
        super().__init__(
            defect_id,
            resolve_target_ops(ops, unit, block),
            base_rate,
            sensitivity,
            aging,
        )
        self._core_id = "?"

    def bind_core(self, core_id: str) -> None:
        """Record the owning core id for error attribution."""
        self._core_id = core_id

    def _corrupt(self, op, operands, result, rng):
        raise MachineCheckError(self._core_id, op)
