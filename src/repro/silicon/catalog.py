"""Catalog of defect archetypes and the population sampler.

The paper reports that "corruption rates vary by many orders of
magnitude (given a particular workload or test) across defective cores"
(§2).  The sampler therefore draws each defect's base rate log-uniformly
across several decades, picks an archetype matching the §2 symptom list,
attaches a random environment sensitivity (§5: "some mercurial core CEE
rates are strongly frequency-sensitive, some aren't") and an aging
profile drawn from a Weibull onset model.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

from repro.silicon.aging import AgingProfile, WeibullOnset
from repro.silicon.defects import (
    AtomicsDefect,
    DefectModel,
    MachineCheckDefect,
    OperandPatternDefect,
    SboxPermutationDefect,
    SharedLogicDefect,
    StuckBitDefect,
)
from repro.silicon.sensitivity import (
    ComposedSensitivity,
    EnvironmentSensitivity,
    FlatSensitivity,
    FrequencySensitivity,
    ThermalSensitivity,
    VoltageMarginSensitivity,
)
from repro.silicon.units import FunctionalUnit, LogicBlock, Op


@dataclasses.dataclass(frozen=True)
class Archetype:
    """A named defect family with a sampling weight."""

    name: str
    weight: float
    build: Callable[[str, float, EnvironmentSensitivity, AgingProfile,
                     np.random.Generator], DefectModel]


def _stuck_bit(defect_id, rate, sens, aging, rng) -> DefectModel:
    unit = rng.choice(
        [FunctionalUnit.ALU, FunctionalUnit.LOAD_STORE, FunctionalUnit.VECTOR]
    )
    return StuckBitDefect(
        defect_id,
        bit=int(rng.integers(64)),
        mode=str(rng.choice(StuckBitDefect.MODES)),
        base_rate=rate,
        unit=unit,
        sensitivity=sens,
        aging=aging,
    )


def _sbox(defect_id, rate, sens, aging, rng) -> DefectModel:
    a = int(rng.integers(256))
    b = int(rng.integers(256))
    while b == a:
        b = int(rng.integers(256))
    return SboxPermutationDefect(
        defect_id, swaps=((a, b),), sensitivity=sens, aging=aging
    )


def _pattern(defect_id, rate, sens, aging, rng) -> DefectModel:
    n_bits = int(rng.integers(2, 7))
    positions = rng.choice(64, size=n_bits, replace=False)
    mask = 0
    for p in positions:
        mask |= 1 << int(p)
    value = int(rng.integers(2**63)) & mask
    unit = rng.choice([FunctionalUnit.MUL_DIV, FunctionalUnit.ALU])
    return OperandPatternDefect(
        defect_id,
        mask=mask,
        value=value,
        error=1 << int(rng.integers(64)),
        base_rate=min(rate * 64, 1.0),  # gate already thins the rate
        unit=unit,
        sensitivity=sens,
        aging=aging,
    )


def _shared_logic(defect_id, rate, sens, aging, rng) -> DefectModel:
    block = rng.choice(
        [LogicBlock.SHUFFLE_NETWORK, LogicBlock.ADDER_TREE,
         LogicBlock.BOOTH_MULTIPLIER]
    )
    return SharedLogicDefect(
        defect_id,
        block=block,
        bit=int(rng.integers(64)),
        base_rate=rate,
        sensitivity=sens,
        aging=aging,
    )


def _atomics(defect_id, rate, sens, aging, rng) -> DefectModel:
    return AtomicsDefect(defect_id, base_rate=rate, sensitivity=sens, aging=aging)


def _machine_check(defect_id, rate, sens, aging, rng) -> DefectModel:
    unit = rng.choice([FunctionalUnit.LOAD_STORE, FunctionalUnit.ATOMICS])
    return MachineCheckDefect(
        defect_id, base_rate=rate, unit=unit, sensitivity=sens, aging=aging
    )


#: archetype weights loosely track the §2 symptom list: data-path
#: corruptions dominate; deterministic table defects and pure
#: machine-check defects are rarer.
ARCHETYPES: tuple[Archetype, ...] = (
    Archetype("stuck_bit", 0.30, _stuck_bit),
    Archetype("operand_pattern", 0.22, _pattern),
    Archetype("shared_logic", 0.18, _shared_logic),
    Archetype("atomics", 0.12, _atomics),
    Archetype("machine_check", 0.10, _machine_check),
    Archetype("sbox_permutation", 0.08, _sbox),
)


def _sample_sensitivity(rng: np.random.Generator) -> EnvironmentSensitivity:
    """Draw an environment sensitivity (§5 heterogeneity).

    Roughly a third of defects are environment-flat; the rest mix
    frequency, voltage-margin and thermal sensitivities.
    """
    roll = rng.random()
    if roll < 0.35:
        return FlatSensitivity()
    parts: list[EnvironmentSensitivity] = []
    if rng.random() < 0.6:
        parts.append(FrequencySensitivity(factor_per_ghz=float(rng.uniform(1.5, 8.0))))
    if rng.random() < 0.5:
        parts.append(
            VoltageMarginSensitivity(factor_per_50mv=float(rng.uniform(1.5, 5.0)))
        )
    if rng.random() < 0.4:
        parts.append(ThermalSensitivity(factor_per_10c=float(rng.uniform(1.2, 2.5))))
    if not parts:
        parts.append(FrequencySensitivity(factor_per_ghz=float(rng.uniform(1.5, 8.0))))
    if len(parts) == 1:
        return parts[0]
    return ComposedSensitivity(parts)


def sample_base_rate(
    rng: np.random.Generator,
    decades: tuple[float, float] = (-7.5, -2.5),
) -> float:
    """Log-uniform base corruption rate spanning several decades (§2)."""
    low, high = decades
    return float(10.0 ** rng.uniform(low, high))


def sample_defect(
    rng: np.random.Generator,
    defect_id: str,
    onset: WeibullOnset | None = None,
    rate_decades: tuple[float, float] = (-7.5, -2.5),
) -> DefectModel:
    """Draw one defect from the archetype catalog."""
    onset = onset or WeibullOnset()
    weights = np.array([a.weight for a in ARCHETYPES])
    weights = weights / weights.sum()
    archetype = ARCHETYPES[int(rng.choice(len(ARCHETYPES), p=weights))]
    rate = sample_base_rate(rng, rate_decades)
    sensitivity = _sample_sensitivity(rng)
    aging = onset.sample_profile(rng)
    return archetype.build(
        f"{defect_id}:{archetype.name}", rate, sensitivity, aging, rng
    )


def sample_core_defects(
    rng: np.random.Generator,
    defect_id_prefix: str,
    onset: WeibullOnset | None = None,
    max_defects: int = 2,
    rate_decades: tuple[float, float] = (-7.5, -2.5),
) -> list[DefectModel]:
    """Draw the defect set for one mercurial core (usually a single defect).

    The paper notes a single core usually fails "often consistently";
    occasionally one core exhibits multiple correlated failure modes
    (the copy+vector case), which the shared-logic archetype covers with
    a single defect object, so multi-defect cores are uncommon here too.
    """
    n = 1 if rng.random() < 0.85 else int(rng.integers(2, max_defects + 1))
    return [
        sample_defect(rng, f"{defect_id_prefix}/d{i}", onset, rate_decades)
        for i in range(n)
    ]


def named_case(name: str) -> Sequence[DefectModel]:
    """Hand-built defect sets reproducing the §2 bullet-list examples.

    These are the deterministic case studies used by examples and
    experiment E3/E4; the names match the paper's anecdotes.
    """
    cases: dict[str, Callable[[], Sequence[DefectModel]]] = {
        # "A deterministic AES mis-computation, which was self-inverting"
        "self_inverting_aes": lambda: [
            SboxPermutationDefect("case:aes", swaps=((0x3A, 0xC5), (0x11, 0x7E)))
        ],
        # "Repeated bit-flips in strings, at a particular bit position"
        "string_bit_flipper": lambda: [
            StuckBitDefect(
                "case:bitflip", bit=5, mode="flip", base_rate=2e-3,
                unit=FunctionalUnit.LOAD_STORE,
            )
        ],
        # "Violations of lock semantics"
        "lock_violator": lambda: [
            AtomicsDefect("case:locks", base_rate=2e-3)
        ],
        # "Database index corruption leading to some queries ... being
        #  non-deterministically corrupted" — a comparator that errs
        #  when both operands carry a particular low-bit pattern.
        "comparator_flip": lambda: [
            OperandPatternDefect(
                "case:cmp", mask=0x7, value=0x7, error=1,
                base_rate=0.6, ops=(Op.BLT, Op.BEQ, Op.CMP),
            )
        ],
        # "Data corruptions exhibited by various load, store, vector, and
        #  coherence operations" — the shared copy/vector logic case (§5)
        "copy_vector_shared": lambda: [
            SharedLogicDefect(
                "case:shuffle", block=LogicBlock.SHUFFLE_NETWORK,
                bit=13, base_rate=1e-3,
            )
        ],
        # Multiplier pattern defect for database/GC corruption studies
        "multiplier_pattern": lambda: [
            OperandPatternDefect(
                "case:mul", mask=0xFF00, value=0x4200, error=1 << 17,
                base_rate=1.0, unit=FunctionalUnit.MUL_DIV,
            )
        ],
        # Fail-noisy core
        "machine_checker": lambda: [
            MachineCheckDefect("case:mce", base_rate=1e-4)
        ],
    }
    try:
        return cases[name]()
    except KeyError:
        raise KeyError(
            f"unknown case {name!r}; available: {sorted(cases)}"
        ) from None


NAMED_CASES: tuple[str, ...] = (
    "self_inverting_aes",
    "comparator_flip",
    "string_bit_flipper",
    "lock_violator",
    "copy_vector_shared",
    "multiplier_pattern",
    "machine_checker",
)
