"""Fault injection for software-resilience studies (§9).

"Similarly, we could develop fault injectors for testing software
resilience on real hardware ... That prior work evaluated algorithms
using fault injection, a technique that does not require access to a
large fleet."

Unlike :mod:`repro.silicon.defects` — which models *hardware* failure
modes statistically — the injector is an experimenter's tool: it wraps
any core and perturbs exactly the operation occurrences you ask for,
deterministically, so a campaign can measure a program's susceptibility
surface (which dynamic operation, when corrupted, produces which
symptom) the way Guan et al. [11] did for sorting.

Usage::

    injector = FaultInjector(core, plan=InjectionPlan(at_op_index=123))
    result = work(injector)          # exactly op #123 is corrupted

    campaign = InjectionCampaign(work, reference_core)
    report = campaign.run(n_sites=200, rng=rng)
    print(report.render())
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, TYPE_CHECKING

import numpy as np

from repro.silicon.core import Core

if TYPE_CHECKING:  # annotation-only: keeps silicon below workloads
    from repro.workloads.base import CoreLike, WorkloadResult


def flip_random_bit(value, rng: np.random.Generator):
    """Default transform: flip one random bit (lane) of the result."""
    if isinstance(value, tuple):
        if not value:
            return value
        lane = int(rng.integers(len(value)))
        lanes = list(value)
        lanes[lane] = lanes[lane] ^ (1 << int(rng.integers(64)))
        return tuple(lanes)
    if isinstance(value, int):
        return value ^ (1 << int(rng.integers(64)))
    return value


@dataclasses.dataclass
class InjectionPlan:
    """What to corrupt.

    Attributes:
        at_op_index: the dynamic operation index (0-based, counted over
            the wrapped core's execution stream) whose result gets
            transformed.  None disables injection (dry run).
        ops: restrict injection to these mnemonics; None = any.
        transform: result transform; default flips one random bit.
    """

    at_op_index: int | None = None
    ops: frozenset | None = None
    transform: Callable = flip_random_bit


class FaultInjector:
    """A transparent ``CoreLike`` wrapper with surgical injection."""

    def __init__(
        self,
        inner: CoreLike,
        plan: InjectionPlan,
        rng: np.random.Generator | None = None,
    ):
        self.inner = inner
        self.core_id = f"inject({inner.core_id})"
        self.plan = plan
        self.rng = rng if rng is not None else np.random.default_rng(0)  # repro: noqa-DET004 -- documented fallback; campaigns pass a trial-derived rng
        self.op_index = -1
        self.injected = False
        self.injected_op: str | None = None

    def execute(self, op: str, *operands):
        """Forward to the wrapped core, perturbing the planned site."""
        result = self.inner.execute(op, *operands)
        if self.plan.ops is not None and op not in self.plan.ops:
            return result
        self.op_index += 1
        if self.plan.at_op_index is not None and \
                self.op_index == self.plan.at_op_index and not self.injected:
            self.injected = True
            self.injected_op = op
            return self.plan.transform(result, self.rng)
        return result

    def golden(self, op: str, *operands):
        """Defect-free semantics via the wrapped core."""
        return self.inner.golden(op, *operands)


class InjectionOutcome(enum.Enum):
    """What one injected fault did to the program under test."""

    BENIGN = "benign"                # output identical anyway (masked)
    DETECTED = "detected"            # app-level check caught it
    CRASHED = "crashed"              # program crashed
    SILENT_CORRUPTION = "silent"     # wrong output, nothing noticed


@dataclasses.dataclass
class SusceptibilityReport:
    """Aggregate of one injection campaign."""

    total_sites: int
    sampled: int
    outcomes: dict[InjectionOutcome, int]
    silent_ops: list[str]  # which mnemonics produced silent corruption

    def fraction(self, outcome: InjectionOutcome) -> float:
        """Share of sampled faults with the given outcome."""
        if self.sampled == 0:
            return 0.0
        return self.outcomes.get(outcome, 0) / self.sampled

    @property
    def sdc_fraction(self) -> float:
        """The headline number of [11]-style studies."""
        return self.fraction(InjectionOutcome.SILENT_CORRUPTION)

    def render(self) -> str:
        """Human-readable campaign summary."""
        lines = [
            f"injection campaign: {self.sampled} faults over "
            f"{self.total_sites} dynamic operations",
        ]
        for outcome in InjectionOutcome:
            lines.append(
                f"  {outcome.value:10s} {self.outcomes.get(outcome, 0):5d} "
                f"({self.fraction(outcome):.1%})"
            )
        if self.silent_ops:
            from collections import Counter

            top = Counter(self.silent_ops).most_common(3)
            lines.append(
                "  silent corruption concentrated in: "
                + ", ".join(f"{op} x{count}" for op, count in top)
            )
        return "\n".join(lines)


class InjectionCampaign:
    """Single-fault injection sweep over a deterministic work unit.

    Args:
        work: ``work(core) -> WorkloadResult`` — must be deterministic
            given the core (seed any randomness outside).
        make_core: factory for fresh healthy cores (each trial needs an
            un-perturbed substrate).
    """

    def __init__(
        self,
        work: Callable[[CoreLike], WorkloadResult],
        make_core: Callable[[], Core] | None = None,
    ):
        self.work = work
        if make_core is None:
            make_core = lambda: Core(  # noqa: E731 — trivial default
                "inject/base", rng=np.random.default_rng(0)  # repro: noqa-DET004 -- fixed-oracle base core: the healthy reference every injection differs from
            )
        self.make_core = make_core

    def count_sites(self, ops: frozenset | None = None) -> int:
        """Dry-run to count injectable dynamic operations."""
        probe = FaultInjector(
            self.make_core(), InjectionPlan(at_op_index=None, ops=ops)
        )
        # Count by running with an impossible index: op_index advances
        # only for ops matching the filter.
        probe.plan = InjectionPlan(at_op_index=-2, ops=ops)
        self.work(probe)
        return probe.op_index + 1

    def run(
        self,
        n_sites: int,
        rng: np.random.Generator,
        ops: frozenset | None = None,
    ) -> SusceptibilityReport:
        """Inject at ``n_sites`` random dynamic sites; classify each."""
        reference = self.work(self.make_core())
        total_sites = self.count_sites(ops)
        if total_sites == 0:
            raise ValueError("work executes no injectable operations")
        outcomes: dict[InjectionOutcome, int] = {o: 0 for o in InjectionOutcome}
        silent_ops: list[str] = []
        sampled = 0
        for _ in range(n_sites):
            site = int(rng.integers(total_sites))
            injector = FaultInjector(
                self.make_core(),
                InjectionPlan(at_op_index=site, ops=ops),
                rng=np.random.default_rng(int(rng.integers(2**63))),
            )
            sampled += 1
            try:
                result = self.work(injector)
            except Exception:
                outcomes[InjectionOutcome.CRASHED] += 1
                continue
            if result.crashed:
                outcomes[InjectionOutcome.CRASHED] += 1
            elif result.app_detected:
                outcomes[InjectionOutcome.DETECTED] += 1
            elif result.output_digest != reference.output_digest:
                outcomes[InjectionOutcome.SILENT_CORRUPTION] += 1
                if injector.injected_op:
                    silent_ops.append(injector.injected_op)
            else:
                outcomes[InjectionOutcome.BENIGN] += 1
        return SusceptibilityReport(
            total_sites=total_sites,
            sampled=sampled,
            outcomes=outcomes,
            silent_ops=silent_ops,
        )
