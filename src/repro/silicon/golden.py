"""Golden (defect-free) semantics of every primitive operation.

These are the answers a healthy core produces.  Scalar operations are
64-bit unsigned with wraparound; vector operations apply the scalar
semantics lane-wise over equal-length tuples; crypto operations are the
real AES field primitives (the S-box is derived from first principles:
multiplicative inverse in GF(2^8) followed by the AES affine transform).

A defective core computes the golden result first and then lets its
defects perturb it — mirroring the paper's observation that CEEs "could
only be detected by checking the results of these instructions against
the expected results".
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Sequence, Tuple

from repro.silicon.units import Op

MASK64 = (1 << 64) - 1
WORD_BITS = 64


def _u64(value: int) -> int:
    return value & MASK64


def _gf256_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            product ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
    return product & 0xFF


def _build_sbox() -> Tuple[int, ...]:
    """Derive the AES S-box: inverse in GF(2^8) then affine transform."""
    # Multiplicative inverses via brute force (256 entries; done once).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf256_mul(x, y) == 1:
                inverse[x] = y
                break
    box = []
    for x in range(256):
        b = inverse[x]
        s = 0
        for bit in range(8):
            v = (
                (b >> bit)
                ^ (b >> ((bit + 4) % 8))
                ^ (b >> ((bit + 5) % 8))
                ^ (b >> ((bit + 6) % 8))
                ^ (b >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            s |= v << bit
        box.append(s)
    return tuple(box)


AES_SBOX: Tuple[int, ...] = _build_sbox()
AES_INV_SBOX: Tuple[int, ...] = tuple(
    AES_SBOX.index(i) for i in range(256)
)


def _shl(a: int, b: int) -> int:
    return _u64(a << (b % WORD_BITS))


def _shr(a: int, b: int) -> int:
    return _u64(a) >> (b % WORD_BITS)


def _rotl(a: int, b: int) -> int:
    b %= WORD_BITS
    a = _u64(a)
    if b == 0:
        return a
    return _u64((a << b) | (a >> (WORD_BITS - b)))


def _cmp(a: int, b: int) -> int:
    """Three-way unsigned compare: 0 equal, 1 less-than, 2 greater-than."""
    a, b = _u64(a), _u64(b)
    if a == b:
        return 0
    return 1 if a < b else 2


def _div(a: int, b: int) -> int:
    if _u64(b) == 0:
        raise ZeroDivisionError("division by zero on simulated core")
    return _u64(a) // _u64(b)


def _mod(a: int, b: int) -> int:
    if _u64(b) == 0:
        raise ZeroDivisionError("modulo by zero on simulated core")
    return _u64(a) % _u64(b)


def _vec(fn: Callable[..., int]) -> Callable[..., Tuple[int, ...]]:
    def apply(*vectors: Sequence[int]) -> Tuple[int, ...]:
        lengths = {len(v) for v in vectors}
        if len(lengths) != 1:
            raise ValueError(f"vector lane mismatch: {sorted(lengths)}")
        return tuple(fn(*lanes) for lanes in zip(*vectors))

    return apply


def _vperm(vector: Sequence[int], indices: Sequence[int]) -> Tuple[int, ...]:
    return tuple(vector[i % len(vector)] for i in indices)


def _copy(data: Sequence[int]) -> Tuple[int, ...]:
    return tuple(_u64(x) for x in data)


def _cas(current: int, expected: int, new: int) -> int:
    return _u64(new) if _u64(current) == _u64(expected) else _u64(current)


GOLDEN: dict[str, Callable] = {
    Op.ADD: lambda a, b: _u64(a + b),
    Op.SUB: lambda a, b: _u64(a - b),
    Op.AND: lambda a, b: _u64(a & b),
    Op.OR: lambda a, b: _u64(a | b),
    Op.XOR: lambda a, b: _u64(a ^ b),
    Op.NOT: lambda a: _u64(~a),
    Op.NEG: lambda a: _u64(-a),
    Op.SHL: _shl,
    Op.SHR: _shr,
    Op.ROTL: _rotl,
    Op.CMP: _cmp,
    Op.POPCNT: lambda a: bin(_u64(a)).count("1"),
    Op.MUL: lambda a, b: _u64(a * b),
    Op.MULH: lambda a, b: _u64((_u64(a) * _u64(b)) >> 64),
    Op.DIV: _div,
    Op.MOD: _mod,
    Op.VADD: _vec(lambda a, b: _u64(a + b)),
    Op.VSUB: _vec(lambda a, b: _u64(a - b)),
    Op.VMUL: _vec(lambda a, b: _u64(a * b)),
    Op.VXOR: _vec(lambda a, b: _u64(a ^ b)),
    Op.VAND: _vec(lambda a, b: _u64(a & b)),
    Op.VOR: _vec(lambda a, b: _u64(a | b)),
    Op.VSHL: _vec(_shl),
    Op.VSHR: _vec(_shr),
    Op.VDOT: lambda a, b: _u64(sum(_u64(x * y) for x, y in zip(a, b))),
    Op.VSUM: lambda a: _u64(sum(_u64(x) for x in a)),
    Op.VPERM: _vperm,
    Op.LOAD: lambda a: _u64(a),
    Op.STORE: lambda a: _u64(a),
    Op.COPY: _copy,
    Op.SBOX: lambda a: AES_SBOX[a & 0xFF],
    Op.INV_SBOX: lambda a: AES_INV_SBOX[a & 0xFF],
    Op.GFMUL: _gf256_mul,
    Op.CAS: _cas,
    Op.FETCH_ADD: lambda cur, delta: _u64(cur + delta),
    Op.XCHG: lambda cur, new: _u64(new),
    Op.BEQ: lambda a, b: 1 if _u64(a) == _u64(b) else 0,
    Op.BLT: lambda a, b: 1 if _u64(a) < _u64(b) else 0,
}


def golden_execute(op: str, *operands):
    """Compute the defect-free result of ``op`` over ``operands``."""
    try:
        fn = GOLDEN[op]
    except KeyError:
        raise KeyError(f"unknown operation {op!r}") from None
    return fn(*operands)


# -- memoized execution path ------------------------------------------
#
# ``golden_execute`` runs for *every* primitive operation of every
# workload — on a defective core it runs before the defects perturb the
# result, so campaign-scale experiments (E15/E16) execute it millions
# of times.  Memoization is *selective*: only operations whose golden
# function does real Python-level work (GF(2^8) bit loops, per-lane
# vector loops, string-allocating POPCNT) go through a per-op LRU.
# Single-expression scalar ops (ADD/XOR/SHL/...) are dispatched
# straight to their golden function: hashing an operand tuple costs
# more than computing them, and high-entropy operand streams (e.g. a
# CRC's running remainder) would only thrash the LRU — the measured
# root cause of the old whole-table cache losing to the uncached
# baseline on the E15 serving campaign.  Operations are pure, so a hit
# is always exact; trapping ops (DIV/MOD by zero) stay uncached and
# raise every time.

_CACHE_CAPACITY = 1 << 17

#: operations worth memoizing: Python-loop or allocating golden fns
#: over operand universes small enough to hit (8-bit field ops repeat
#: endlessly; vector/copy streams repeat per workload block).
MEMOIZED_OPS = frozenset({
    Op.GFMUL, Op.SBOX, Op.INV_SBOX, Op.POPCNT,
    Op.VADD, Op.VSUB, Op.VMUL, Op.VXOR, Op.VAND, Op.VOR,
    Op.VSHL, Op.VSHR, Op.VDOT, Op.VSUM, Op.VPERM, Op.COPY,
})


def _memo_table() -> dict[str, Callable]:
    table = {}
    for op in MEMOIZED_OPS:
        fn = GOLDEN[op]

        @functools.lru_cache(maxsize=_CACHE_CAPACITY)
        def cached(operands: tuple, _fn: Callable = fn):
            return _fn(*operands)

        table[op] = cached
    return table


_MEMO: dict[str, Callable] = _memo_table()

_cache_enabled = os.environ.get("REPRO_GOLDEN_CACHE", "1") != "0"


def set_golden_cache(enabled: bool) -> None:
    """Enable/disable golden memoization (the bench harness A/Bs this)."""
    global _cache_enabled
    _cache_enabled = bool(enabled)


def golden_cache_enabled() -> bool:
    """Whether golden-result memoization is currently on."""
    return _cache_enabled


def golden_cache_info():
    """Aggregate hit/miss statistics across the per-op LRUs."""
    infos = [memo.cache_info() for memo in _MEMO.values()]
    return functools.reduce(
        lambda a, b: a._replace(
            hits=a.hits + b.hits,
            misses=a.misses + b.misses,
            currsize=a.currsize + b.currsize,
        ),
        infos,
    )


def golden_cache_clear() -> None:
    """Drop every memoized golden result (bench hygiene)."""
    for memo in _MEMO.values():
        memo.cache_clear()


def golden_call(op: str, operands: tuple):
    """Selectively memoized :func:`golden_execute` over an operand tuple.

    Memoized ops (:data:`MEMOIZED_OPS`) go through their per-op LRU;
    everything else dispatches straight to its golden function — one
    frame shorter than :func:`golden_execute`, which stays unchanged as
    the preserved uncached baseline path.  Falls back to the uncached
    path for unhashable operands (callers passing lists) and preserves
    ``golden_execute``'s KeyError message for unknown operations.
    """
    if not _cache_enabled:
        return golden_execute(op, *operands)
    memo = _MEMO.get(op)
    if memo is not None:
        try:
            return memo(operands)
        except TypeError:
            return golden_execute(op, *operands)
    try:
        fn = GOLDEN[op]
    except KeyError:
        raise KeyError(f"unknown operation {op!r}") from None
    return fn(*operands)
