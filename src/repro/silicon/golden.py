"""Golden (defect-free) semantics of every primitive operation.

These are the answers a healthy core produces.  Scalar operations are
64-bit unsigned with wraparound; vector operations apply the scalar
semantics lane-wise over equal-length tuples; crypto operations are the
real AES field primitives (the S-box is derived from first principles:
multiplicative inverse in GF(2^8) followed by the AES affine transform).

A defective core computes the golden result first and then lets its
defects perturb it — mirroring the paper's observation that CEEs "could
only be detected by checking the results of these instructions against
the expected results".
"""

from __future__ import annotations

import functools
import os
from typing import Callable, Sequence, Tuple

from repro.silicon.units import Op

MASK64 = (1 << 64) - 1
WORD_BITS = 64


def _u64(value: int) -> int:
    return value & MASK64


def _gf256_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    product = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            product ^= a
        b >>= 1
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
    return product & 0xFF


def _build_sbox() -> Tuple[int, ...]:
    """Derive the AES S-box: inverse in GF(2^8) then affine transform."""
    # Multiplicative inverses via brute force (256 entries; done once).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf256_mul(x, y) == 1:
                inverse[x] = y
                break
    box = []
    for x in range(256):
        b = inverse[x]
        s = 0
        for bit in range(8):
            v = (
                (b >> bit)
                ^ (b >> ((bit + 4) % 8))
                ^ (b >> ((bit + 5) % 8))
                ^ (b >> ((bit + 6) % 8))
                ^ (b >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            s |= v << bit
        box.append(s)
    return tuple(box)


AES_SBOX: Tuple[int, ...] = _build_sbox()
AES_INV_SBOX: Tuple[int, ...] = tuple(
    AES_SBOX.index(i) for i in range(256)
)


def _shl(a: int, b: int) -> int:
    return _u64(a << (b % WORD_BITS))


def _shr(a: int, b: int) -> int:
    return _u64(a) >> (b % WORD_BITS)


def _rotl(a: int, b: int) -> int:
    b %= WORD_BITS
    a = _u64(a)
    if b == 0:
        return a
    return _u64((a << b) | (a >> (WORD_BITS - b)))


def _cmp(a: int, b: int) -> int:
    """Three-way unsigned compare: 0 equal, 1 less-than, 2 greater-than."""
    a, b = _u64(a), _u64(b)
    if a == b:
        return 0
    return 1 if a < b else 2


def _div(a: int, b: int) -> int:
    if _u64(b) == 0:
        raise ZeroDivisionError("division by zero on simulated core")
    return _u64(a) // _u64(b)


def _mod(a: int, b: int) -> int:
    if _u64(b) == 0:
        raise ZeroDivisionError("modulo by zero on simulated core")
    return _u64(a) % _u64(b)


def _vec(fn: Callable[..., int]) -> Callable[..., Tuple[int, ...]]:
    def apply(*vectors: Sequence[int]) -> Tuple[int, ...]:
        lengths = {len(v) for v in vectors}
        if len(lengths) != 1:
            raise ValueError(f"vector lane mismatch: {sorted(lengths)}")
        return tuple(fn(*lanes) for lanes in zip(*vectors))

    return apply


def _vperm(vector: Sequence[int], indices: Sequence[int]) -> Tuple[int, ...]:
    return tuple(vector[i % len(vector)] for i in indices)


def _copy(data: Sequence[int]) -> Tuple[int, ...]:
    return tuple(_u64(x) for x in data)


def _cas(current: int, expected: int, new: int) -> int:
    return _u64(new) if _u64(current) == _u64(expected) else _u64(current)


GOLDEN: dict[str, Callable] = {
    Op.ADD: lambda a, b: _u64(a + b),
    Op.SUB: lambda a, b: _u64(a - b),
    Op.AND: lambda a, b: _u64(a & b),
    Op.OR: lambda a, b: _u64(a | b),
    Op.XOR: lambda a, b: _u64(a ^ b),
    Op.NOT: lambda a: _u64(~a),
    Op.NEG: lambda a: _u64(-a),
    Op.SHL: _shl,
    Op.SHR: _shr,
    Op.ROTL: _rotl,
    Op.CMP: _cmp,
    Op.POPCNT: lambda a: bin(_u64(a)).count("1"),
    Op.MUL: lambda a, b: _u64(a * b),
    Op.MULH: lambda a, b: _u64((_u64(a) * _u64(b)) >> 64),
    Op.DIV: _div,
    Op.MOD: _mod,
    Op.VADD: _vec(lambda a, b: _u64(a + b)),
    Op.VSUB: _vec(lambda a, b: _u64(a - b)),
    Op.VMUL: _vec(lambda a, b: _u64(a * b)),
    Op.VXOR: _vec(lambda a, b: _u64(a ^ b)),
    Op.VAND: _vec(lambda a, b: _u64(a & b)),
    Op.VOR: _vec(lambda a, b: _u64(a | b)),
    Op.VSHL: _vec(_shl),
    Op.VSHR: _vec(_shr),
    Op.VDOT: lambda a, b: _u64(sum(_u64(x * y) for x, y in zip(a, b))),
    Op.VSUM: lambda a: _u64(sum(_u64(x) for x in a)),
    Op.VPERM: _vperm,
    Op.LOAD: lambda a: _u64(a),
    Op.STORE: lambda a: _u64(a),
    Op.COPY: _copy,
    Op.SBOX: lambda a: AES_SBOX[a & 0xFF],
    Op.INV_SBOX: lambda a: AES_INV_SBOX[a & 0xFF],
    Op.GFMUL: _gf256_mul,
    Op.CAS: _cas,
    Op.FETCH_ADD: lambda cur, delta: _u64(cur + delta),
    Op.XCHG: lambda cur, new: _u64(new),
    Op.BEQ: lambda a, b: 1 if _u64(a) == _u64(b) else 0,
    Op.BLT: lambda a, b: 1 if _u64(a) < _u64(b) else 0,
}


def golden_execute(op: str, *operands):
    """Compute the defect-free result of ``op`` over ``operands``."""
    try:
        fn = GOLDEN[op]
    except KeyError:
        raise KeyError(f"unknown operation {op!r}") from None
    return fn(*operands)


# -- memoized execution path ------------------------------------------
#
# ``golden_execute`` runs for *every* primitive operation of every
# workload — on a defective core it runs before the defects perturb the
# result, so campaign-scale experiments (E15/E16) execute it millions
# of times over a tiny operand universe (AES field ops cover only
# 2^8–2^16 distinct inputs).  The LRU below memoizes results keyed on
# ``(op, operands)``; operations are pure, so a hit is always exact.
# Trapping operations (DIV/MOD by zero) raise and are never cached.

_CACHE_CAPACITY = 1 << 17


@functools.lru_cache(maxsize=_CACHE_CAPACITY)
def _golden_cached(op: str, operands: tuple):
    return GOLDEN[op](*operands)


_cache_enabled = os.environ.get("REPRO_GOLDEN_CACHE", "1") != "0"


def set_golden_cache(enabled: bool) -> None:
    """Enable/disable the golden LRU (the bench harness A/Bs this)."""
    global _cache_enabled
    _cache_enabled = bool(enabled)


def golden_cache_enabled() -> bool:
    """Whether golden-result memoization is currently on."""
    return _cache_enabled


def golden_cache_info():
    """Hit/miss statistics of the golden LRU."""
    return _golden_cached.cache_info()


def golden_cache_clear() -> None:
    """Drop every memoized golden result (bench hygiene)."""
    _golden_cached.cache_clear()


def golden_call(op: str, operands: tuple):
    """Memoized :func:`golden_execute` over an operand tuple.

    Falls back to the uncached path for unhashable operands (callers
    passing lists) and preserves ``golden_execute``'s KeyError message
    for unknown operations.
    """
    if not _cache_enabled:
        return golden_execute(op, *operands)
    try:
        return _golden_cached(op, operands)
    except TypeError:
        return golden_execute(op, *operands)
    except KeyError:
        raise KeyError(f"unknown operation {op!r}") from None
