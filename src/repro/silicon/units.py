"""Functional units and the operation → unit mapping.

The paper (§5) observes that modern CPUs "are gradually becoming sets of
discrete accelerators around a shared register file", which makes CEEs
highly specific: a defect in one execution unit corrupts only the
instructions that flow through it while the rest of the core stays
correct.  This module defines the simulated core's functional units and
assigns every primitive operation to exactly one unit, plus a set of
*logic blocks* that may be shared between units.

Shared logic blocks model the paper's observation (§5) that "the same
mercurial core manifests CEEs both with certain data-copy operations and
with certain vector operations.  We discovered that both kinds of
operations share the same hardware logic".  A defect bound to the
``SHUFFLE_NETWORK`` block therefore afflicts both ``copy`` and the
vector permute/arithmetic lanes.
"""

from __future__ import annotations

import enum
from typing import FrozenSet


class FunctionalUnit(enum.Enum):
    """A discrete execution resource inside one core."""

    ALU = "alu"
    MUL_DIV = "mul_div"
    VECTOR = "vector"
    LOAD_STORE = "load_store"
    CRYPTO = "crypto"
    ATOMICS = "atomics"
    BRANCH = "branch"


class LogicBlock(enum.Enum):
    """A lower-level logic structure potentially shared between units.

    Defects may be attached to a logic block instead of a whole unit,
    which yields the cross-unit correlated failures reported in §5.
    """

    ADDER_TREE = "adder_tree"
    BOOTH_MULTIPLIER = "booth_multiplier"
    SHIFT_ROTATE = "shift_rotate"
    SHUFFLE_NETWORK = "shuffle_network"  # shared by copy + vector ops
    SBOX_TABLE = "sbox_table"
    AGU = "address_generation"
    LOCK_PIPELINE = "lock_pipeline"
    COMPARATOR = "comparator"


class Op:
    """Namespace of primitive operation mnemonics.

    Every computation performed by the workload substrates is expressed
    in terms of these operations and executed through
    :meth:`repro.silicon.core.Core.execute`, which is the single choke
    point where defects can corrupt results.
    """

    # Scalar ALU
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    NEG = "neg"
    SHL = "shl"
    SHR = "shr"
    ROTL = "rotl"
    CMP = "cmp"
    POPCNT = "popcnt"

    # Multiplier / divider
    MUL = "mul"
    MULH = "mulh"
    DIV = "div"
    MOD = "mod"

    # Vector unit (operands are equal-length tuples of lanes)
    VADD = "vadd"
    VSUB = "vsub"
    VMUL = "vmul"
    VXOR = "vxor"
    VAND = "vand"
    VOR = "vor"
    VSHL = "vshl"
    VSHR = "vshr"
    VDOT = "vdot"
    VSUM = "vsum"
    VPERM = "vperm"

    # Load/store + block copy
    LOAD = "load"
    STORE = "store"
    COPY = "copy"

    # Crypto unit (AES primitives)
    SBOX = "sbox"
    INV_SBOX = "inv_sbox"
    GFMUL = "gfmul"

    # Atomics / locking
    CAS = "cas"
    FETCH_ADD = "fetch_add"
    XCHG = "xchg"

    # Branch resolution
    BEQ = "beq"
    BLT = "blt"


#: operation → functional unit
OP_UNIT: dict[str, FunctionalUnit] = {
    Op.ADD: FunctionalUnit.ALU,
    Op.SUB: FunctionalUnit.ALU,
    Op.AND: FunctionalUnit.ALU,
    Op.OR: FunctionalUnit.ALU,
    Op.XOR: FunctionalUnit.ALU,
    Op.NOT: FunctionalUnit.ALU,
    Op.NEG: FunctionalUnit.ALU,
    Op.SHL: FunctionalUnit.ALU,
    Op.SHR: FunctionalUnit.ALU,
    Op.ROTL: FunctionalUnit.ALU,
    Op.CMP: FunctionalUnit.ALU,
    Op.POPCNT: FunctionalUnit.ALU,
    Op.MUL: FunctionalUnit.MUL_DIV,
    Op.MULH: FunctionalUnit.MUL_DIV,
    Op.DIV: FunctionalUnit.MUL_DIV,
    Op.MOD: FunctionalUnit.MUL_DIV,
    Op.VADD: FunctionalUnit.VECTOR,
    Op.VSUB: FunctionalUnit.VECTOR,
    Op.VMUL: FunctionalUnit.VECTOR,
    Op.VXOR: FunctionalUnit.VECTOR,
    Op.VAND: FunctionalUnit.VECTOR,
    Op.VOR: FunctionalUnit.VECTOR,
    Op.VSHL: FunctionalUnit.VECTOR,
    Op.VSHR: FunctionalUnit.VECTOR,
    Op.VDOT: FunctionalUnit.VECTOR,
    Op.VSUM: FunctionalUnit.VECTOR,
    Op.VPERM: FunctionalUnit.VECTOR,
    Op.LOAD: FunctionalUnit.LOAD_STORE,
    Op.STORE: FunctionalUnit.LOAD_STORE,
    Op.COPY: FunctionalUnit.LOAD_STORE,
    Op.SBOX: FunctionalUnit.CRYPTO,
    Op.INV_SBOX: FunctionalUnit.CRYPTO,
    Op.GFMUL: FunctionalUnit.CRYPTO,
    Op.CAS: FunctionalUnit.ATOMICS,
    Op.FETCH_ADD: FunctionalUnit.ATOMICS,
    Op.XCHG: FunctionalUnit.ATOMICS,
    Op.BEQ: FunctionalUnit.BRANCH,
    Op.BLT: FunctionalUnit.BRANCH,
}

#: operation → logic blocks its result flows through
OP_LOGIC_BLOCKS: dict[str, FrozenSet[LogicBlock]] = {
    Op.ADD: frozenset({LogicBlock.ADDER_TREE}),
    Op.SUB: frozenset({LogicBlock.ADDER_TREE}),
    Op.AND: frozenset(),
    Op.OR: frozenset(),
    Op.XOR: frozenset(),
    Op.NOT: frozenset(),
    Op.NEG: frozenset({LogicBlock.ADDER_TREE}),
    Op.SHL: frozenset({LogicBlock.SHIFT_ROTATE}),
    Op.SHR: frozenset({LogicBlock.SHIFT_ROTATE}),
    Op.ROTL: frozenset({LogicBlock.SHIFT_ROTATE}),
    Op.CMP: frozenset({LogicBlock.COMPARATOR}),
    Op.POPCNT: frozenset({LogicBlock.ADDER_TREE}),
    Op.MUL: frozenset({LogicBlock.BOOTH_MULTIPLIER}),
    Op.MULH: frozenset({LogicBlock.BOOTH_MULTIPLIER}),
    Op.DIV: frozenset({LogicBlock.BOOTH_MULTIPLIER}),
    Op.MOD: frozenset({LogicBlock.BOOTH_MULTIPLIER}),
    Op.VADD: frozenset({LogicBlock.ADDER_TREE, LogicBlock.SHUFFLE_NETWORK}),
    Op.VSUB: frozenset({LogicBlock.ADDER_TREE, LogicBlock.SHUFFLE_NETWORK}),
    Op.VMUL: frozenset({LogicBlock.BOOTH_MULTIPLIER, LogicBlock.SHUFFLE_NETWORK}),
    Op.VXOR: frozenset({LogicBlock.SHUFFLE_NETWORK}),
    Op.VAND: frozenset({LogicBlock.SHUFFLE_NETWORK}),
    Op.VOR: frozenset({LogicBlock.SHUFFLE_NETWORK}),
    Op.VSHL: frozenset({LogicBlock.SHIFT_ROTATE, LogicBlock.SHUFFLE_NETWORK}),
    Op.VSHR: frozenset({LogicBlock.SHIFT_ROTATE, LogicBlock.SHUFFLE_NETWORK}),
    Op.VDOT: frozenset({LogicBlock.BOOTH_MULTIPLIER, LogicBlock.ADDER_TREE}),
    Op.VSUM: frozenset({LogicBlock.ADDER_TREE}),
    Op.VPERM: frozenset({LogicBlock.SHUFFLE_NETWORK}),
    Op.LOAD: frozenset({LogicBlock.AGU}),
    Op.STORE: frozenset({LogicBlock.AGU}),
    Op.COPY: frozenset({LogicBlock.AGU, LogicBlock.SHUFFLE_NETWORK}),
    Op.SBOX: frozenset({LogicBlock.SBOX_TABLE}),
    Op.INV_SBOX: frozenset({LogicBlock.SBOX_TABLE}),
    Op.GFMUL: frozenset({LogicBlock.BOOTH_MULTIPLIER}),
    Op.CAS: frozenset({LogicBlock.LOCK_PIPELINE, LogicBlock.COMPARATOR}),
    Op.FETCH_ADD: frozenset({LogicBlock.LOCK_PIPELINE, LogicBlock.ADDER_TREE}),
    Op.XCHG: frozenset({LogicBlock.LOCK_PIPELINE}),
    Op.BEQ: frozenset({LogicBlock.COMPARATOR}),
    Op.BLT: frozenset({LogicBlock.COMPARATOR}),
}

#: all known operation mnemonics
ALL_OPS: tuple[str, ...] = tuple(OP_UNIT)

#: unit → operations, useful for building unit-targeted screening tests
UNIT_OPS: dict[FunctionalUnit, tuple[str, ...]] = {
    unit: tuple(op for op, u in OP_UNIT.items() if u is unit)
    for unit in FunctionalUnit
}


def unit_of(op: str) -> FunctionalUnit:
    """Return the functional unit that executes ``op``.

    Raises:
        KeyError: if ``op`` is not a known operation mnemonic.
    """
    return OP_UNIT[op]


def logic_blocks_of(op: str) -> FrozenSet[LogicBlock]:
    """Return the logic blocks an ``op`` result flows through."""
    return OP_LOGIC_BLOCKS[op]


def ops_touching(block: LogicBlock) -> tuple[str, ...]:
    """Return every operation whose datapath includes ``block``."""
    return tuple(op for op, blocks in OP_LOGIC_BLOCKS.items() if block in blocks)
