"""A matrix-multiply accelerator with PE-level defects (§9).

"Much computation is now done not just on traditional CPUs, but on
accelerator silicon such as GPUs, ML accelerators, P4 switches, NICs,
etc.  Often these accelerators push the limits of scale, complexity,
and power, so one might expect to see CEEs in these devices as well.
There might be novel challenges in detecting and mitigating CEEs in
non-CPU settings."

This module explores one such novelty.  The accelerator is a weight-
stationary systolic array of ``size × size`` processing elements (PEs);
an output tile element C[i][j] accumulates through the PE column that
owns output column j as partial sums flow down.  A single defective PE
therefore corrupts a *structured slice* of every result tile — not a
random scatter — which changes the detection story:

- per-element checks see a suspicious column/row concentration;
- ABFT column checksums catch it with one extra row (cheaper than on a
  CPU because the checksum row rides the same systolic pass);
- the CPU-style per-op screening corpus is useless: the accelerator
  only speaks matmul, so screening must be *tile-level* (golden tiles).

Defects model fabrication reality: a PE miscomputes its multiply
(stuck bit in one partial product) at some rate, always at the same
array coordinates.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

MASK64 = (1 << 64) - 1

Matrix = list[list[int]]


@dataclasses.dataclass(frozen=True)
class PeDefect:
    """A defective processing element at fixed array coordinates.

    Attributes:
        row, col: the PE's position in the array.
        bit: which bit of the partial product it flips.
        rate: probability a given multiply through this PE corrupts.
    """

    row: int
    col: int
    bit: int = 13
    rate: float = 1e-3

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be a probability")
        if not 0 <= self.bit < 64:
            raise ValueError("bit must be in [0, 64)")


class MatrixAccelerator:
    """A ``size × size`` weight-stationary systolic matmul unit.

    Matrices are processed in ``size × size`` tiles (zero-padded).  The
    mapping of work to PEs is the physically meaningful part: the
    partial product ``A[i][k] * B[k][j]`` for an output tile executes
    on PE ``(k % size, j % size)`` — so a defective PE touches every
    output column ``j ≡ col (mod size)`` and every reduction step
    ``k ≡ row (mod size)``.
    """

    def __init__(
        self,
        accel_id: str,
        size: int = 8,
        defects: Sequence[PeDefect] = (),
        rng: np.random.Generator | None = None,
    ):
        if size < 1:
            raise ValueError("array size must be positive")
        for defect in defects:
            if not (0 <= defect.row < size and 0 <= defect.col < size):
                raise ValueError(f"defect {defect} outside the {size}x{size} array")
        self.accel_id = accel_id
        self.size = size
        self.defects = tuple(defects)
        self.rng = rng if rng is not None else np.random.default_rng(0)  # repro: noqa-DET004 -- documented fallback; campaigns pass a trial-derived rng
        self.tiles_executed = 0
        self.corruptions_induced = 0

    @property
    def is_mercurial(self) -> bool:
        return bool(self.defects)

    def _partial_product(self, a: int, b: int, k: int, j: int) -> int:
        product = (a * b) & MASK64
        for defect in self.defects:
            if (k % self.size == defect.row and j % self.size == defect.col
                    and self.rng.random() < defect.rate):
                product ^= 1 << defect.bit
                self.corruptions_induced += 1
        return product

    def matmul(self, a: Matrix, b: Matrix) -> Matrix:
        """Multiply (mod 2**64) through the systolic array."""
        n, inner = len(a), len(a[0])
        if len(b) != inner:
            raise ValueError("inner dimensions disagree")
        m = len(b[0])
        self.tiles_executed += max(1, (n * m + self.size ** 2 - 1)
                                   // self.size ** 2)
        out = [[0] * m for _ in range(n)]
        for i in range(n):
            row = a[i]
            for j in range(m):
                acc = 0
                for k in range(inner):
                    acc = (acc + self._partial_product(row[k], b[k][j], k, j)) \
                        & MASK64
                out[i][j] = acc
        return out

    def golden_matmul(self, a: Matrix, b: Matrix) -> Matrix:
        """Defect-free reference (the experimenter's oracle)."""
        n, inner, m = len(a), len(a[0]), len(b[0])
        out = [[0] * m for _ in range(n)]
        for i in range(n):
            for j in range(m):
                acc = 0
                for k in range(inner):
                    acc = (acc + a[i][k] * b[k][j]) & MASK64
                out[i][j] = acc
        return out


# ---------------------------------------------------------------------
# Detection for a device that only speaks matmul
# ---------------------------------------------------------------------

def column_error_signature(
    observed: Matrix, expected: Matrix, array_size: int
) -> dict[int, int]:
    """Histogram of errors by (column mod array size).

    A PE defect concentrates errors on one residue class — the
    accelerator analog of §2's "bit-flips at a particular bit position
    (which stuck out as unlikely to be coding bugs)".
    """
    histogram: dict[int, int] = {}
    for row_obs, row_exp in zip(observed, expected):
        for j, (x, y) in enumerate(zip(row_obs, row_exp)):
            if x != y:
                key = j % array_size
                histogram[key] = histogram.get(key, 0) + 1
    return histogram


def abft_tile_check(
    accelerator: MatrixAccelerator, a: Matrix, b: Matrix
) -> tuple[Matrix, bool]:
    """Checksum-augmented accelerator multiply.

    Appends a column-checksum row to ``a``; after the pass, the last
    output row must equal the column sums of the rest.  The checksum
    row flows through the *same PEs* as the data, so a defective PE is
    caught unless it corrupts data and checksum identically (probability
    ~rate², which the caller handles by retrying).

    Returns ``(product_without_checksum_row, consistent)``.
    """
    checksum_row = [0] * len(a[0])
    for row in a:
        for k, value in enumerate(row):
            checksum_row[k] = (checksum_row[k] + value) & MASK64
    augmented = [list(row) for row in a] + [checksum_row]
    product = accelerator.matmul(augmented, b)
    body, check = product[:-1], product[-1]
    consistent = True
    for j in range(len(check)):
        column_sum = 0
        for row in body:
            column_sum = (column_sum + row[j]) & MASK64
        if column_sum != check[j]:
            consistent = False
            break
    return body, consistent


def screen_accelerator(
    accelerator: MatrixAccelerator,
    n_tiles: int = 8,
    seed: int = 0,
) -> bool:
    """Tile-level golden screening: random tiles vs host recompute.

    Returns True if the accelerator passed (no corruption observed).
    The CPU screening corpus cannot run here — this is the §9 "novel
    challenges in detecting CEEs in non-CPU settings" answer: the test
    content must exercise every PE, which random dense tiles do.
    """
    rng = np.random.default_rng(seed)
    size = accelerator.size
    for _ in range(n_tiles):
        a = [[int(x) for x in row]
             for row in rng.integers(0, 2**32, (size, size))]
        b = [[int(x) for x in row]
             for row in rng.integers(0, 2**32, (size, size))]
        if accelerator.matmul(a, b) != accelerator.golden_matmul(a, b):
            return False
    return True
