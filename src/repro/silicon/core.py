"""The simulated core: the single choke point where CEEs happen.

Every primitive operation performed by any workload in this repository
executes through :meth:`Core.execute`.  A healthy core returns the
golden result; a mercurial core lets each of its defects perturb the
result.  The core keeps *ground-truth* counters (operations executed,
corruptions induced, machine checks raised) which experiments use to
score detectors — the detectors themselves never see this ground truth,
matching the paper's black-box situation ("we have observations of the
form 'this code has miscomputed (or crashed) on that core'").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.silicon.defects import DefectModel, MachineCheckDefect
from repro.silicon.environment import NOMINAL, OperatingPoint
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.golden import golden_call, golden_execute

# Observability is touched only on the rare corruption / machine-check
# branches — never on the per-op fast path, which stays exactly as the
# BENCH_E1 baseline measured it.  Handles are module-level because Core
# uses __slots__ and fleets hold hundreds of thousands of instances.
_OBS_CORRUPTIONS: obs.Counter | None = None
_OBS_MCES: obs.Counter | None = None


def _obs_counters() -> tuple[obs.Counter, obs.Counter]:
    global _OBS_CORRUPTIONS, _OBS_MCES
    if _OBS_CORRUPTIONS is None:
        _OBS_CORRUPTIONS = obs.metrics.counter(
            "silicon_corruptions_total",
            help="defect-induced wrong results (ground truth)", unit="ops",
        )
        _OBS_MCES = obs.metrics.counter(
            "silicon_machine_checks_total",
            help="fail-noisy defects that raised an MCE (ground truth)",
            unit="events",
        )
    return _OBS_CORRUPTIONS, _OBS_MCES


class Core:
    """One hardware thread of execution, possibly mercurial.

    Args:
        core_id: stable identifier, e.g. ``"m0017/c05"``.
        defects: defect models afflicting this core (empty = healthy).
        env: initial operating point.
        rng: random generator used for probabilistic defects; a healthy
            core never draws from it, so construction is lazy — fleets
            of hundreds of thousands of healthy cores never pay for a
            Generator each.
        age_days: current age since deployment, drives aging profiles.
    """

    __slots__ = (
        "core_id", "_defects", "env", "_rng", "age_days", "online",
        "ops_executed", "corruptions_induced", "machine_checks_raised",
    )

    def __init__(
        self,
        core_id: str,
        defects: Sequence[DefectModel] = (),
        env: OperatingPoint = NOMINAL,
        rng: np.random.Generator | None = None,
        age_days: float = 0.0,
    ):
        self.core_id = core_id
        self._defects = tuple(defects)
        for defect in self._defects:
            if isinstance(defect, MachineCheckDefect):
                defect.bind_core(core_id)
        self.env = env
        self._rng = rng
        self.age_days = age_days
        self.online = True

        # Ground truth accounting (never visible to detectors).
        self.ops_executed = 0
        self.corruptions_induced = 0
        self.machine_checks_raised = 0

    @property
    def rng(self) -> np.random.Generator:
        """Defect randomness source, created on first use."""
        rng = self._rng
        if rng is None:
            rng = self._rng = np.random.default_rng(0)  # repro: noqa-DET004 -- lazy fallback for cores built without an rng; trial paths inject theirs
        return rng

    @rng.setter
    def rng(self, value: np.random.Generator) -> None:
        self._rng = value

    # -- identity ------------------------------------------------------

    @property
    def defects(self) -> tuple[DefectModel, ...]:
        """This core's defect models (empty for a healthy core)."""
        return self._defects

    @property
    def is_mercurial(self) -> bool:
        """Ground truth: does this core carry any defect at all?"""
        return bool(self._defects)

    def is_defective_now(self) -> bool:
        """Ground truth: any defect already past its onset age?"""
        return any(d.aging.is_active(self.age_days) for d in self._defects)

    # -- environment / lifecycle ---------------------------------------

    def set_environment(self, env: OperatingPoint) -> None:
        """Move the core to a new (f, V, T) operating point."""
        self.env = env

    def advance_age(self, days: float) -> None:
        """Age the core (drives onset and escalation)."""
        if days < 0:
            raise ValueError("cannot get younger")
        self.age_days += days

    def set_online(self, online: bool) -> None:
        """Mark the core schedulable (True) or quarantined/drained."""
        self.online = online

    # -- execution ------------------------------------------------------

    def execute(self, op: str, *operands):
        """Execute one primitive operation, applying any defects.

        Returns the (possibly corrupted) result.

        Raises:
            CoreOfflineError: the core has been quarantined/drained.
            MachineCheckError: a fail-noisy defect fired.
        """
        if not self.online:
            raise CoreOfflineError(self.core_id)
        self.ops_executed += 1
        result = golden_call(op, operands)
        if not self._defects:
            return result
        golden = result
        rng = self.rng
        for defect in self._defects:
            try:
                result = defect.apply(
                    op, operands, result, self.env, self.age_days, rng
                )
            except MachineCheckError:
                self.machine_checks_raised += 1
                if obs.metrics.enabled:
                    _obs_counters()[1].inc()
                raise
        if result != golden:
            self.corruptions_induced += 1
            if obs.metrics.enabled:
                _obs_counters()[0].inc()
        return result

    def golden(self, op: str, *operands):
        """Defect-free result; the oracle used by ground-truth scoring."""
        return golden_execute(op, *operands)

    def effective_rate(self, op: str) -> float:
        """Analytic per-execution corruption probability for ``op`` now."""
        total = 0.0
        for defect in self._defects:
            total += defect.effective_rate(op, self.env, self.age_days)
        return min(total, 1.0)

    def mean_rate(self, op_mix: dict[str, float]) -> float:
        """Analytic expected corruptions per op under an operation mix."""
        total = 0.0
        for defect in self._defects:
            total += defect.mean_rate(op_mix, self.env, self.age_days)
        return min(total, 1.0)

    def reset_counters(self) -> None:
        """Zero the ground-truth accounting."""
        self.ops_executed = 0
        self.corruptions_induced = 0
        self.machine_checks_raised = 0

    def __repr__(self) -> str:
        kind = "mercurial" if self.is_mercurial else "healthy"
        return f"<Core {self.core_id} ({kind}, {len(self._defects)} defects)>"


class Chip:
    """A multi-core CPU package.

    The paper observes that CEEs "typically afflict specific cores on
    multi-core CPUs, rather than the entire chip"; the natural object is
    therefore a chip whose cores are mostly healthy with at most one or
    two mercurial members.
    """

    def __init__(self, cores: Sequence[Core]):
        if not cores:
            raise ValueError("a chip needs at least one core")
        self.cores = list(cores)

    @classmethod
    def build(
        cls,
        chip_id: str,
        n_cores: int,
        defects_by_core: dict[int, Sequence[DefectModel]] | None = None,
        env: OperatingPoint = NOMINAL,
        seed: int = 0,
        age_days: float = 0.0,
    ) -> "Chip":
        """Construct a chip with ``n_cores`` and optional defects.

        Args:
            defects_by_core: maps core index → defect models; all other
                cores are healthy.
        """
        defects_by_core = defects_by_core or {}
        root = np.random.default_rng(seed)
        cores = []
        for index in range(n_cores):
            core_rng = np.random.default_rng(root.integers(2**63))
            cores.append(
                Core(
                    core_id=f"{chip_id}/c{index:02d}",
                    defects=defects_by_core.get(index, ()),
                    env=env,
                    rng=core_rng,
                    age_days=age_days,
                )
            )
        return cls(cores)

    @property
    def mercurial_cores(self) -> list[Core]:
        """Ground truth: the defective members of this chip."""
        return [core for core in self.cores if core.is_mercurial]

    def set_environment(self, env: OperatingPoint) -> None:
        """Apply one operating point to every core of the chip."""
        for core in self.cores:
            core.set_environment(env)

    def advance_age(self, days: float) -> None:
        """Age all cores together (they share the package)."""
        for core in self.cores:
            core.advance_age(days)

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self):
        return iter(self.cores)

    def __repr__(self) -> str:
        return (
            f"<Chip {len(self.cores)} cores, "
            f"{len(self.mercurial_cores)} mercurial>"
        )
