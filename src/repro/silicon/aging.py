"""Aging and late-onset behaviour of defects.

The paper reports that CEEs "can manifest long after initial
installation" (§1), that faulty cores "often get worse with time; we
have some evidence that aging is a factor" (§2), and that age-until-
onset is one of the candidate metrics (§4).  This module provides:

- :class:`AgingProfile`: per-defect latency and escalation — a defect is
  silent until ``onset_days``, then its corruption rate grows
  multiplicatively with post-onset age.
- :class:`WeibullOnset`: a population-level sampler of onset ages
  (Weibull with shape > 1 gives the wear-out behaviour expected of
  late-life silicon defects).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np


@dataclasses.dataclass(frozen=True)
class AgingProfile:
    """How one defect's activity depends on the chip's age.

    Attributes:
        onset_days: age (days since deployment) at which the defect
            first becomes active.  ``0`` means defective from day one
            (a manufacturing-test escape).
        escalation_per_year: multiplicative growth of the corruption
            rate per year past onset.  ``1.0`` means a stable rate;
            ``2.0`` doubles the rate every year after onset.
        saturation: cap on the total escalation multiplier, so rates do
            not grow without bound in long simulations.
    """

    onset_days: float = 0.0
    escalation_per_year: float = 1.0
    saturation: float = 1000.0

    def __post_init__(self) -> None:
        if self.onset_days < 0:
            raise ValueError("onset_days must be non-negative")
        if self.escalation_per_year < 1.0:
            raise ValueError("escalation_per_year must be >= 1.0")
        if self.saturation < 1.0:
            raise ValueError("saturation must be >= 1.0")

    def is_active(self, age_days: float) -> bool:
        """Whether the defect has manifested by ``age_days``."""
        return age_days >= self.onset_days

    def rate_multiplier(self, age_days: float) -> float:
        """Multiplier applied to the defect's base corruption rate.

        Returns 0.0 before onset; grows exponentially after onset at
        ``escalation_per_year`` per 365 days, capped at ``saturation``.
        """
        if not self.is_active(age_days):
            return 0.0
        years_past_onset = (age_days - self.onset_days) / 365.0
        multiplier = self.escalation_per_year ** years_past_onset
        return min(multiplier, self.saturation)


#: a defect present and stable from day one
IMMEDIATE = AgingProfile(onset_days=0.0, escalation_per_year=1.0)


class WeibullOnset:
    """Sampler for defect onset ages across a population.

    With ``shape > 1`` the hazard rate increases with age (wear-out),
    matching the paper's evidence that aging is a factor.  A fraction of
    defects (``escape_fraction``) are manufacturing-test escapes active
    from day zero.
    """

    def __init__(
        self,
        scale_days: float = 700.0,
        shape: float = 2.0,
        escape_fraction: float = 0.35,
    ):
        if scale_days <= 0:
            raise ValueError("scale_days must be positive")
        if shape <= 0:
            raise ValueError("shape must be positive")
        if not 0.0 <= escape_fraction <= 1.0:
            raise ValueError("escape_fraction must be in [0, 1]")
        self.scale_days = scale_days
        self.shape = shape
        self.escape_fraction = escape_fraction

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one onset age in days."""
        if rng.random() < self.escape_fraction:
            return 0.0
        return float(self.scale_days * rng.weibull(self.shape))

    def sample_profile(
        self,
        rng: np.random.Generator,
        escalation_range: tuple[float, float] = (1.0, 3.0),
    ) -> AgingProfile:
        """Draw a full :class:`AgingProfile` (onset plus escalation)."""
        low, high = escalation_range
        escalation = float(rng.uniform(low, high))
        return AgingProfile(
            onset_days=self.sample(rng), escalation_per_year=escalation
        )

    def cdf(self, age_days: float) -> float:
        """Probability a defect has manifested by ``age_days``."""
        if age_days < 0:
            return 0.0
        weibull_part = 1.0 - math.exp(-((age_days / self.scale_days) ** self.shape))
        return self.escape_fraction + (1.0 - self.escape_fraction) * weibull_part
