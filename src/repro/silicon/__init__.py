"""Simulated silicon: cores, functional units, defects, environment.

This package is the substitute for the real defective hardware the
paper studied (see DESIGN.md §1).  The public surface:

- :class:`Core` / :class:`Chip` — execution with defect injection.
- Defect models in :mod:`repro.silicon.defects` and the population
  sampler in :mod:`repro.silicon.catalog`.
- Operating conditions in :mod:`repro.silicon.environment` and rate
  sensitivities in :mod:`repro.silicon.sensitivity`.
- Aging/onset models in :mod:`repro.silicon.aging`.
- A small ISA (:mod:`repro.silicon.isa`), assembler and VM for writing
  screening tests as programs.
"""

from repro.silicon.accelerator import (
    MatrixAccelerator,
    PeDefect,
    abft_tile_check,
    column_error_signature,
    screen_accelerator,
)
from repro.silicon.aging import AgingProfile, IMMEDIATE, WeibullOnset
from repro.silicon.assembler import AssemblyError, assemble
from repro.silicon.catalog import (
    NAMED_CASES,
    named_case,
    sample_core_defects,
    sample_defect,
)
from repro.silicon.core import Chip, Core
from repro.silicon.defects import (
    AtomicsDefect,
    DefectModel,
    MachineCheckDefect,
    OperandPatternDefect,
    SboxPermutationDefect,
    SharedLogicDefect,
    StuckBitDefect,
)
from repro.silicon.environment import DvfsTable, NOMINAL, OperatingPoint, stress_points
from repro.silicon.errors import CoreOfflineError, MachineCheckError, SiliconError
from repro.silicon.golden import AES_INV_SBOX, AES_SBOX, MASK64, golden_execute
from repro.silicon.injector import (
    FaultInjector,
    InjectionCampaign,
    InjectionOutcome,
    InjectionPlan,
    SusceptibilityReport,
)
from repro.silicon.sensitivity import (
    ComposedSensitivity,
    FlatSensitivity,
    FrequencySensitivity,
    ThermalSensitivity,
    VoltageMarginSensitivity,
)
from repro.silicon.units import FunctionalUnit, LogicBlock, Op
from repro.silicon.vm import Vm, VmResult

__all__ = [
    "MatrixAccelerator",
    "PeDefect",
    "abft_tile_check",
    "column_error_signature",
    "screen_accelerator",
    "AgingProfile",
    "IMMEDIATE",
    "WeibullOnset",
    "AssemblyError",
    "assemble",
    "NAMED_CASES",
    "named_case",
    "sample_core_defects",
    "sample_defect",
    "Chip",
    "Core",
    "AtomicsDefect",
    "DefectModel",
    "MachineCheckDefect",
    "OperandPatternDefect",
    "SboxPermutationDefect",
    "SharedLogicDefect",
    "StuckBitDefect",
    "DvfsTable",
    "NOMINAL",
    "OperatingPoint",
    "stress_points",
    "CoreOfflineError",
    "MachineCheckError",
    "SiliconError",
    "AES_INV_SBOX",
    "AES_SBOX",
    "MASK64",
    "golden_execute",
    "FaultInjector",
    "InjectionCampaign",
    "InjectionOutcome",
    "InjectionPlan",
    "SusceptibilityReport",
    "ComposedSensitivity",
    "FlatSensitivity",
    "FrequencySensitivity",
    "ThermalSensitivity",
    "VoltageMarginSensitivity",
    "FunctionalUnit",
    "LogicBlock",
    "Op",
    "Vm",
    "VmResult",
]
