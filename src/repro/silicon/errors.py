"""Exceptions raised by the simulated silicon."""

from __future__ import annotations


class SiliconError(Exception):
    """Base class for simulated-hardware errors."""


class MachineCheckError(SiliconError):
    """A machine-check exception raised by a core.

    The paper classifies machine checks as "more disruptive" than
    immediately-detected wrong answers (§2) but notes they are at least
    *noisy*: the OS sees them and can log them, which makes them a
    detection signal (§6).
    """

    def __init__(self, core_id: str, op: str, message: str = ""):
        self.core_id = core_id
        self.op = op
        super().__init__(
            message or f"machine check on core {core_id} executing {op!r}"
        )


class CoreOfflineError(SiliconError):
    """Raised when work is dispatched to a core that has been removed."""

    def __init__(self, core_id: str):
        self.core_id = core_id
        super().__init__(f"core {core_id} is offline (quarantined or drained)")
