"""Environment sensitivity: how a defect's rate depends on (f, V, T).

The paper (§5): "Temperature, frequency, and voltage all play roles, but
their impact varies: e.g., some mercurial core CEE rates are strongly
frequency-sensitive, some aren't.  Dynamic Frequency and Voltage Scaling
(DFVS) causes frequency and voltage to be closely related in complex
ways, one of several reasons why lower frequency sometimes (surprisingly)
increases the failure rate."

Each sensitivity maps an :class:`~repro.silicon.environment.OperatingPoint`
to a multiplicative factor on a defect's base corruption rate.  The
"lower frequency is worse" anomaly emerges naturally from
:class:`VoltageMarginSensitivity` swept along a DVFS ladder: lower DVFS
states also lower the voltage, and a voltage-margin defect fires more at
low voltage, so the *frequency* sweep appears inverted.
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.silicon.environment import NOMINAL, OperatingPoint


class EnvironmentSensitivity(Protocol):
    """Callable mapping an operating point to a rate multiplier."""

    def multiplier(self, env: OperatingPoint) -> float:
        """Return the (non-negative) rate multiplier at ``env``."""
        ...


class FlatSensitivity:
    """Rate is independent of operating conditions."""

    def multiplier(self, env: OperatingPoint) -> float:
        return 1.0

    def __repr__(self) -> str:
        return "FlatSensitivity()"


class FrequencySensitivity:
    """Rate scales exponentially with frequency above a reference.

    ``factor_per_ghz > 1`` is the common case (timing-marginal paths
    fail more when clocked faster); ``factor_per_ghz < 1`` produces a
    directly frequency-inverted defect.
    """

    def __init__(
        self,
        factor_per_ghz: float = 4.0,
        reference_ghz: float = NOMINAL.frequency_ghz,
    ):
        if factor_per_ghz <= 0:
            raise ValueError("factor_per_ghz must be positive")
        self.factor_per_ghz = factor_per_ghz
        self.reference_ghz = reference_ghz

    def multiplier(self, env: OperatingPoint) -> float:
        return self.factor_per_ghz ** (env.frequency_ghz - self.reference_ghz)

    def __repr__(self) -> str:
        return (
            f"FrequencySensitivity(factor_per_ghz={self.factor_per_ghz}, "
            f"reference_ghz={self.reference_ghz})"
        )


class VoltageMarginSensitivity:
    """Rate grows as voltage drops below nominal (margin erosion).

    Every 50 mV *below* ``nominal_v`` multiplies the rate by
    ``factor_per_50mv``; voltage above nominal divides it.
    """

    def __init__(
        self,
        factor_per_50mv: float = 3.0,
        nominal_v: float = NOMINAL.voltage_v,
    ):
        if factor_per_50mv <= 0:
            raise ValueError("factor_per_50mv must be positive")
        self.factor_per_50mv = factor_per_50mv
        self.nominal_v = nominal_v

    def multiplier(self, env: OperatingPoint) -> float:
        deficit_50mv = (self.nominal_v - env.voltage_v) / 0.050
        return self.factor_per_50mv ** deficit_50mv

    def __repr__(self) -> str:
        return (
            f"VoltageMarginSensitivity(factor_per_50mv={self.factor_per_50mv}, "
            f"nominal_v={self.nominal_v})"
        )


class ThermalSensitivity:
    """Rate scales with temperature above a reference (per 10 °C)."""

    def __init__(
        self,
        factor_per_10c: float = 1.8,
        reference_c: float = NOMINAL.temperature_c,
    ):
        if factor_per_10c <= 0:
            raise ValueError("factor_per_10c must be positive")
        self.factor_per_10c = factor_per_10c
        self.reference_c = reference_c

    def multiplier(self, env: OperatingPoint) -> float:
        return self.factor_per_10c ** ((env.temperature_c - self.reference_c) / 10.0)

    def __repr__(self) -> str:
        return (
            f"ThermalSensitivity(factor_per_10c={self.factor_per_10c}, "
            f"reference_c={self.reference_c})"
        )


class ComposedSensitivity:
    """Product of several sensitivities (rates compose multiplicatively)."""

    def __init__(self, parts: Sequence[EnvironmentSensitivity]):
        if not parts:
            raise ValueError("ComposedSensitivity needs at least one part")
        self.parts = tuple(parts)

    def multiplier(self, env: OperatingPoint) -> float:
        result = 1.0
        for part in self.parts:
            result *= part.multiplier(env)
        return result

    def __repr__(self) -> str:
        return f"ComposedSensitivity({list(self.parts)!r})"
