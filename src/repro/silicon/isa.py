"""A small register ISA whose instructions map onto functional units.

The paper calls for "cycle-level CPU simulators that allow injection of
known CEE behavior" (§9).  This ISA is the affordable version of that:
screening tests and micro-workloads are written as programs whose
instructions execute through :class:`~repro.silicon.core.Core`, so a
defect bound to (say) the vector unit corrupts exactly the ``v*``
instructions of a program and nothing else.

Machine model:

- 16 scalar registers ``r0``–``r15`` (64-bit unsigned),
- 8 vector registers ``v0``–``v7`` of ``VLEN`` 64-bit lanes,
- a flat word-addressed memory,
- a program counter; branches target labels resolved at assembly time.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Tuple

from repro.silicon.units import Op

N_SCALAR_REGS = 16
N_VECTOR_REGS = 8
VLEN = 8


@dataclasses.dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction: mnemonic plus operand tuple.

    Operand meaning depends on the mnemonic; see :data:`FORMATS`.
    Register operands are indices, immediates are ints, branch targets
    are absolute instruction addresses (filled in by the assembler).
    """

    mnemonic: str
    operands: Tuple[int, ...]

    def __str__(self) -> str:
        return f"{self.mnemonic} {', '.join(map(str, self.operands))}"


#: mnemonic → (operand format, core op or None)
#: formats: d=dest reg, a/b=src regs, i=immediate, t=branch target,
#:          D/A/B=vector regs, m=memory address register
FORMATS: dict[str, tuple[str, str | None]] = {
    # register moves / immediates (no functional unit exercised)
    "li": ("di", None),
    "mv": ("da", None),
    # scalar ALU
    "add": ("dab", Op.ADD),
    "sub": ("dab", Op.SUB),
    "and": ("dab", Op.AND),
    "or": ("dab", Op.OR),
    "xor": ("dab", Op.XOR),
    "shl": ("dab", Op.SHL),
    "shr": ("dab", Op.SHR),
    "rotl": ("dab", Op.ROTL),
    "cmp": ("dab", Op.CMP),
    "not": ("da", Op.NOT),
    "neg": ("da", Op.NEG),
    "popcnt": ("da", Op.POPCNT),
    # multiplier / divider
    "mul": ("dab", Op.MUL),
    "mulh": ("dab", Op.MULH),
    "div": ("dab", Op.DIV),
    "mod": ("dab", Op.MOD),
    # crypto
    "sbox": ("da", Op.SBOX),
    "isbox": ("da", Op.INV_SBOX),
    "gfmul": ("dab", Op.GFMUL),
    # memory
    "ld": ("da", Op.LOAD),      # rd <- mem[ra]
    "st": ("ab", Op.STORE),     # mem[ra] <- rb
    "cpy": ("abi", Op.COPY),    # mem[ra..] <- mem[rb..], i words
    # atomics on memory
    "cas": ("dabi", Op.CAS),    # rd <- CAS(mem[ra], rb, imm-reg rc)
    "fadd": ("dab", Op.FETCH_ADD),  # rd <- mem[ra] += rb (returns new)
    "xchg": ("dab", Op.XCHG),   # rd <- old mem[ra]; mem[ra] <- rb
    # vector
    "vld": ("Da", Op.LOAD),     # vD <- mem[ra .. ra+VLEN)
    "vst": ("aB", Op.STORE),    # mem[ra ..] <- vB
    "vadd": ("DAB", Op.VADD),
    "vsub": ("DAB", Op.VSUB),
    "vmul": ("DAB", Op.VMUL),
    "vxor": ("DAB", Op.VXOR),
    "vand": ("DAB", Op.VAND),
    "vor": ("DAB", Op.VOR),
    "vdot": ("dAB", Op.VDOT),
    "vsum": ("dA", Op.VSUM),
    # control flow
    "beq": ("abt", Op.BEQ),
    "bne": ("abt", Op.BEQ),
    "blt": ("abt", Op.BLT),
    "jmp": ("t", None),
    "halt": ("", None),
}

ALL_MNEMONICS: tuple[str, ...] = tuple(FORMATS)


def validate(instruction: Instruction) -> None:
    """Check operand count and register ranges; raise ValueError if bad."""
    fmt_entry = FORMATS.get(instruction.mnemonic)
    if fmt_entry is None:
        raise ValueError(f"unknown mnemonic {instruction.mnemonic!r}")
    fmt, _ = fmt_entry
    if len(instruction.operands) != len(fmt):
        raise ValueError(
            f"{instruction.mnemonic} expects {len(fmt)} operands, "
            f"got {len(instruction.operands)}"
        )
    for kind, operand in zip(fmt, instruction.operands):
        if kind in "dab" and not 0 <= operand < N_SCALAR_REGS:
            raise ValueError(
                f"scalar register out of range in {instruction}: {operand}"
            )
        if kind in "DAB" and not 0 <= operand < N_VECTOR_REGS:
            raise ValueError(
                f"vector register out of range in {instruction}: {operand}"
            )
        if kind in "it" and operand < 0:
            raise ValueError(f"negative immediate/target in {instruction}")


@functools.lru_cache(maxsize=None)
def core_op(mnemonic: str) -> str | None:
    """The :class:`~repro.silicon.units.Op` a mnemonic exercises (or None)."""
    return FORMATS[mnemonic][1]
