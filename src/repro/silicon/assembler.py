"""Two-pass assembler for the screening-test ISA.

Syntax, one instruction per line::

    ; comments start with ';' or '#'
    start:              ; labels end with ':'
        li   r1, 0x10   ; immediates are decimal or 0x hex
        li   r2, 25
    loop:
        add  r3, r3, r1
        sub  r2, r2, r4
        bne  r2, r0, loop
        halt

Register operands are ``r0``–``r15`` and ``v0``–``v7``; branch targets
are label names resolved to absolute instruction addresses in the
second pass.
"""

from __future__ import annotations

import re

from repro.silicon.isa import FORMATS, Instruction, validate

_LABEL_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class AssemblyError(ValueError):
    """Raised for malformed assembly source."""

    def __init__(self, line_no: int, line: str, message: str):
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}: {line.strip()!r}")


def _strip(line: str) -> str:
    for marker in (";", "#"):
        position = line.find(marker)
        if position >= 0:
            line = line[:position]
    return line.strip()


def _parse_operand(token: str, kind: str, labels: dict[str, int],
                   line_no: int, line: str) -> int:
    token = token.strip()
    if kind in "dab":
        if not token.startswith("r"):
            raise AssemblyError(line_no, line, f"expected scalar register, got {token!r}")
        return int(token[1:])
    if kind in "DAB":
        if not token.startswith("v"):
            raise AssemblyError(line_no, line, f"expected vector register, got {token!r}")
        return int(token[1:])
    if kind == "i":
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError(line_no, line, f"bad immediate {token!r}") from None
    if kind == "t":
        if token in labels:
            return labels[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AssemblyError(line_no, line, f"unknown label {token!r}") from None
    raise AssemblyError(line_no, line, f"internal: bad operand kind {kind!r}")


def assemble(source: str) -> list[Instruction]:
    """Assemble source text into a validated instruction list."""
    # Pass 1: collect labels and raw instruction lines.
    labels: dict[str, int] = {}
    raw: list[tuple[int, str]] = []  # (line_no, text)
    address = 0
    for line_no, line in enumerate(source.splitlines(), start=1):
        text = _strip(line)
        if not text:
            continue
        while ":" in text:
            label, _, rest = text.partition(":")
            label = label.strip()
            if not _LABEL_RE.match(label):
                raise AssemblyError(line_no, line, f"bad label {label!r}")
            if label in labels:
                raise AssemblyError(line_no, line, f"duplicate label {label!r}")
            labels[label] = address
            text = rest.strip()
        if text:
            raw.append((line_no, text))
            address += 1

    # Pass 2: parse instructions with label addresses known.
    program: list[Instruction] = []
    for line_no, text in raw:
        parts = text.split(None, 1)
        mnemonic = parts[0].lower()
        if mnemonic not in FORMATS:
            raise AssemblyError(line_no, text, f"unknown mnemonic {mnemonic!r}")
        fmt, _ = FORMATS[mnemonic]
        tokens = [t for t in (parts[1].split(",") if len(parts) > 1 else []) if t.strip()]
        if len(tokens) != len(fmt):
            raise AssemblyError(
                line_no, text,
                f"{mnemonic} expects {len(fmt)} operands, got {len(tokens)}",
            )
        operands = tuple(
            _parse_operand(token, kind, labels, line_no, text)
            for token, kind in zip(tokens, fmt)
        )
        instruction = Instruction(mnemonic, operands)
        try:
            validate(instruction)
        except ValueError as exc:
            raise AssemblyError(line_no, text, str(exc)) from None
        program.append(instruction)
    return program
