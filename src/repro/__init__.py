"""repro — a reproduction of "Cores that don't count" (HotOS '21).

A simulation and defense framework for silent Corrupt Execution Errors
(CEEs) caused by "mercurial" CPU cores.  See README.md for the tour and
DESIGN.md for the system inventory and experiment index.

Subpackages:

- :mod:`repro.silicon` — simulated cores, functional units, defect
  models, operating environment, aging, and a small ISA + VM.
- :mod:`repro.workloads` — from-scratch production-like software
  (compression, hashing, AES, copying, locking, vector kernels,
  B-tree database, filesystem with GC) routed through simulated cores.
- :mod:`repro.core` — the paper's conceptual contribution systematized:
  CEE taxonomy, events, metrics, suspicion scoring, report service,
  triage, quarantine policy.
- :mod:`repro.detection` — screeners on the paper's four axes, signal
  analysis, test corpus, lockstep baseline, quarantine mechanisms.
- :mod:`repro.mitigation` — redundant execution, checkpoint/restart,
  self-checking libraries, end-to-end checks, ABFT-style resilient
  algorithms.
- :mod:`repro.fleet` — machines, population synthesis, scheduler,
  telemetry, and the discrete-event fleet simulator.
- :mod:`repro.analysis` — statistics, detection economics, experiment
  registry, and text renderers for the paper's figure and tables.
- :mod:`repro.serving` — simulated RPC service over fleet cores with
  CEE-hardening (validation, retries, hedging, breakers) campaigns.
- :mod:`repro.storage` — quorum-replicated KV store whose bytes cross
  fleet silicon, with scrub/repair and chaos campaigns.
- :mod:`repro.engine` — deterministic parallel trial execution and the
  benchmark harness with committed scorecards.
- :mod:`repro.obs` — unified observability: metrics registry, trace
  spans, exporters, and corruption-forensics timelines (see
  OBSERVABILITY.md).
"""

__version__ = "1.0.0"
