#!/usr/bin/env python
"""Markdown doc checks: relative links resolve, anchors exist.

Scans every tracked ``*.md`` file (repo root + docs/) for inline links
and validates the repo-relative ones:

- ``[text](path)`` — ``path`` must exist relative to the linking file;
- ``[text](path#anchor)`` / ``[text](#anchor)`` — the target file must
  contain a heading whose GitHub slug matches ``anchor``.

External links (http/https/mailto) are not fetched — CI must not
depend on the network.  Exit status 1 lists every broken link.

Usage::

    python scripts/check_docs.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline markdown links, skipping images; group 1 = target
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    text = _CODE_FENCE.sub("", path.read_text())
    return {_slug(m.group(1)) for m in _HEADING.finditer(text)}


def _markdown_files() -> list[Path]:
    files = sorted(REPO.glob("*.md"))
    docs = REPO / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def check() -> list[str]:
    errors: list[str] = []
    for md_file in _markdown_files():
        text = _CODE_FENCE.sub("", md_file.read_text())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md_file.relative_to(REPO)}: broken link "
                        f"-> {target}"
                    )
                    continue
            else:
                resolved = md_file
            if anchor and resolved.suffix == ".md":
                if anchor not in _anchors(resolved):
                    errors.append(
                        f"{md_file.relative_to(REPO)}: missing anchor "
                        f"-> {target}"
                    )
    return errors


def main() -> int:
    errors = check()
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(_markdown_files())
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files",
              file=sys.stderr)
        return 1
    print(f"all relative links OK across {checked} markdown files")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
