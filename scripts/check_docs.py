#!/usr/bin/env python
"""Markdown doc checks: links resolve, lint rules are documented.

Scans every tracked ``*.md`` file (repo root + docs/) for inline links
and validates the repo-relative ones:

- ``[text](path)`` — ``path`` must exist relative to the linking file;
- ``[text](path#anchor)`` / ``[text](#anchor)`` — the target file must
  contain a heading whose GitHub slug matches ``anchor``.

External links (http/https/mailto) are not fetched — CI must not
depend on the network.

It also enforces the lint docs-coverage contract (same pattern as the
metric/span gate in ``tests/test_docs.py``): every rule id registered
in ``src/repro/lint/rules_*.py`` must appear in CONTRIBUTING.md's rule
table, so a rule cannot ship without operator documentation.

Exit status 1 lists every broken link / undocumented rule.

Usage::

    python scripts/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: inline markdown links, skipping images; group 1 = target
_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def _slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, dash spaces."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    text = _CODE_FENCE.sub("", path.read_text())
    return {_slug(m.group(1)) for m in _HEADING.finditer(text)}


def _markdown_files() -> list[Path]:
    files = sorted(REPO.glob("*.md"))
    docs = REPO / "docs"
    if docs.is_dir():
        files += sorted(docs.rglob("*.md"))
    return files


def check() -> list[str]:
    errors: list[str] = []
    for md_file in _markdown_files():
        text = _CODE_FENCE.sub("", md_file.read_text())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = (md_file.parent / path_part).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{md_file.relative_to(REPO)}: broken link "
                        f"-> {target}"
                    )
                    continue
            else:
                resolved = md_file
            if anchor and resolved.suffix == ".md":
                if anchor not in _anchors(resolved):
                    errors.append(
                        f"{md_file.relative_to(REPO)}: missing anchor "
                        f"-> {target}"
                    )
    return errors


def _registered_rule_ids() -> set[str]:
    """Rule ids declared in the lint rule modules (AST, no imports)."""
    ids: set[str] = set()
    for path in sorted((REPO / "src" / "repro" / "lint").glob("rules_*.py")):
        for node in ast.walk(ast.parse(path.read_text())):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "rule_id"
                        for t in stmt.targets
                    )
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    ids.add(stmt.value.value)
    return ids


def check_rule_docs() -> list[str]:
    """Every registered lint rule id is documented in CONTRIBUTING.md."""
    contributing = REPO / "CONTRIBUTING.md"
    if not contributing.exists():
        return ["CONTRIBUTING.md is missing (lint rule docs live there)"]
    text = contributing.read_text()
    rule_ids = _registered_rule_ids()
    if not rule_ids:
        return ["no lint rule ids found under src/repro/lint/rules_*.py"]
    return [
        f"CONTRIBUTING.md: lint rule `{rule_id}` is registered but "
        "undocumented"
        for rule_id in sorted(rule_ids)
        if f"`{rule_id}`" not in text
    ]


def main() -> int:
    errors = check() + check_rule_docs()
    for error in errors:
        print(error, file=sys.stderr)
    checked = len(_markdown_files())
    if errors:
        print(f"{len(errors)} broken link(s) across {checked} files",
              file=sys.stderr)
        return 1
    print(
        f"all relative links OK across {checked} markdown files; "
        f"{len(_registered_rule_ids())} lint rule id(s) documented"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
