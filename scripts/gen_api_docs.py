#!/usr/bin/env python
"""Generate docs/api.md from the package's docstrings.

Walks ``src/repro`` with :mod:`ast` (no imports, no side effects, so
the output is a pure function of the source tree), and emits one
markdown section per module: the module docstring's first paragraph,
then every public class and function with its signature and docstring
summary line.

Usage::

    python scripts/gen_api_docs.py           # (re)write docs/api.md
    python scripts/gen_api_docs.py --check   # exit 1 if docs/api.md is stale

CI runs ``--check`` so the committed reference can never drift from
the code; regenerate and commit when it fails.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
OUT = REPO / "docs" / "api.md"

HEADER = """\
# API reference

Auto-generated from docstrings by `scripts/gen_api_docs.py` — do not
edit by hand.  Regenerate with:

```
python scripts/gen_api_docs.py
```

CI fails if this file is stale (`python scripts/gen_api_docs.py --check`).
"""


def _first_paragraph(docstring: str | None) -> str:
    if not docstring:
        return "*(no docstring)*"
    paragraph = docstring.strip().split("\n\n")[0]
    return " ".join(line.strip() for line in paragraph.splitlines())


def _summary_line(docstring: str | None) -> str:
    if not docstring:
        return "*(no docstring)*"
    return docstring.strip().splitlines()[0].strip()


def _signature(node: ast.FunctionDef | ast.AsyncFunctionDef) -> str:
    """Best-effort one-line signature from the AST."""
    args = node.args
    parts: list[str] = []
    positional = args.posonlyargs + args.args
    n_defaults = len(args.defaults)
    for index, arg in enumerate(positional):
        text = arg.arg
        default_index = index - (len(positional) - n_defaults)
        if default_index >= 0:
            text += "=" + ast.unparse(args.defaults[default_index])
        parts.append(text)
    if args.vararg:
        parts.append("*" + args.vararg.arg)
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        text = arg.arg
        if default is not None:
            text += "=" + ast.unparse(default)
        parts.append(text)
    if args.kwarg:
        parts.append("**" + args.kwarg.arg)
    return f"{node.name}({', '.join(parts)})"


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _module_entries(tree: ast.Module) -> list[str]:
    lines: list[str] = []
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            lines.append(
                f"- **class `{node.name}`** — "
                f"{_summary_line(ast.get_docstring(node))}"
            )
            for member in node.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _is_public(member.name)
                    and ast.get_docstring(member)
                ):
                    lines.append(
                        f"  - `{_signature(member)}` — "
                        f"{_summary_line(ast.get_docstring(member))}"
                    )
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and _is_public(node.name):
            lines.append(
                f"- **`{_signature(node)}`** — "
                f"{_summary_line(ast.get_docstring(node))}"
            )
    return lines


def generate() -> str:
    sections: list[str] = [HEADER]
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if any(part.startswith("_") and part != "__init__.py"
               for part in relative.parts):
            continue
        dotted = ".".join(("repro",) + relative.with_suffix("").parts)
        dotted = dotted.removesuffix(".__init__")
        tree = ast.parse(path.read_text())
        sections.append(f"## `{dotted}`")
        sections.append(_first_paragraph(ast.get_docstring(tree)))
        entries = _module_entries(tree)
        if entries:
            sections.append("\n".join(entries))
    return "\n\n".join(sections) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="fail (exit 1) if docs/api.md is out of date",
    )
    args = parser.parse_args(argv)
    text = generate()
    if args.check:
        if not OUT.exists() or OUT.read_text() != text:
            print(
                "docs/api.md is stale; regenerate with "
                "`python scripts/gen_api_docs.py`",
                file=sys.stderr,
            )
            return 1
        print("docs/api.md is up to date")
        return 0
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(text)
    print(f"wrote {OUT.relative_to(REPO)} ({len(text.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
