"""E19 — fleet proxy screening: the budget × prevalence × corpus grid."""

from benchmarks.conftest import is_ci_scale

from repro.analysis.experiments import run_fleetscreen_grid


def test_e19_fleetscreen_grid(benchmark, show):
    if is_ci_scale():
        kwargs = dict(n_machines=60, horizon_days=60.0)
    else:
        kwargs = dict(n_machines=120, horizon_days=120.0)
    result = benchmark.pedantic(
        run_fleetscreen_grid, kwargs=kwargs, rounds=1, iterations=1
    )
    show(result["rendered"])

    assert result["corpora"] == ["full", "distilled"]

    # The headline physics, on the measured grid: distillation keeps
    # full unit coverage at a fraction of the run cost...
    assert result["distilled_cheaper_at_equal_coverage"]
    # ...so under a binding budget the cheaper battery sweeps the fleet
    # faster and never detects less than the full corpus...
    assert result["distilled_detects_no_less"]
    # ...and paying more budget buys more (or equal) detection.
    assert result["budget_buys_detection"]

    grid = result["grid"]
    tight, wide = result["budgets"][0], result["budgets"][-1]
    for scale in result["prevalence_scales"]:
        for corpus in result["corpora"]:
            cell = grid[tight][scale][corpus]
            # budget accounting invariant: never spend over the allowance
            assert cell["machine_seconds"] <= cell["budget_machine_seconds"]
            # the distilled battery is the same battery at every budget
            assert (
                cell["battery_ops"] == grid[wide][scale][corpus]["battery_ops"]
            )
        # the tight budget is genuinely binding: coverage was lost
        assert grid[tight][scale]["full"]["skipped_slots"] > 0

    # the E9 anchor rows came along for pricing context
    assert len(result["baseline"]) == len(result["baseline_labels"]) == 2
