"""E16 — replicated storage under CEE: durable-path chaos campaigns."""

from benchmarks.conftest import is_ci_scale

from repro.analysis.experiments import run_storage_under_cee
from repro.core.events import EventKind
from repro.storage.campaign import STORAGE_EVENT_KINDS


def test_e16_storage(benchmark, show):
    ticks = 200 if is_ci_scale() else 600
    result = benchmark.pedantic(
        run_storage_under_cee, kwargs=dict(ticks=ticks), rounds=1, iterations=1
    )
    show(result["rendered"])

    # Corruption really reaches clients of the trusting store...
    assert result["escape_rate_unprotected"] > 0.0
    # ...and the full stack cuts the durable escape rate by >= 10x.
    assert (
        result["escape_rate_protected"]
        <= result["escape_rate_unprotected"] / 10.0
    )

    # The Section 5.2 hazard: without verify-after-encrypt, acked keys
    # become permanently unrecoverable; the full stack loses none.
    assert result["unrecoverable_unprotected"] > 0
    assert result["unrecoverable_protected"] == 0

    # The defence stack costs < 3x the baseline's write amplification.
    assert result["write_amp_cost"] < 3.0

    # Storage integrity signals show up as first-class suspicion events
    # against the defective core...
    storage_events = [
        e for e in result["protected_events"]
        if e.kind in STORAGE_EVENT_KINDS
    ]
    assert storage_events
    assert any(
        e.core_id == result["bad_core_id"]
        and e.kind is EventKind.ENCRYPT_VERIFY_FAIL
        for e in storage_events
    )

    # ...and drive quarantine: the protected store evicts the bad core
    # (no later than the generic-weight ablation does), while the
    # trusting baseline never fingers it.
    assert result["quarantine_tick_dedicated"] is not None
    assert result["quarantine_tick_generic"] is not None
    assert (
        result["quarantine_tick_dedicated"]
        <= result["quarantine_tick_generic"]
    )
    assert (
        result["bad_core_id"]
        not in result["unprotected"].quarantine_tick
    )
