"""Scorecard harness — thin runnable front-end over ``repro.engine.bench``.

Emits ``BENCH_<ID>.json`` scorecards for the registered macro-benchmarks
(build, e1, e15, e16).  The scale defaults to whatever ``REPRO_SCALE``
says, so CI can run ``REPRO_SCALE=ci python benchmarks/harness.py``
while local perf runs get the full default sizes.

Equivalent CLI: ``python -m repro bench [ids...] --scale ... --workers N``.
"""

from __future__ import annotations

import argparse
import sys

try:
    from benchmarks.conftest import is_ci_scale
except ModuleNotFoundError:
    # Running as a script (`python benchmarks/harness.py`) puts the
    # benchmarks/ directory itself on sys.path, not the repo root.
    from conftest import is_ci_scale
from repro.engine.bench import (  # noqa: F401  (re-exported for callers)
    BENCHMARKS,
    BenchScorecard,
    run_benchmark,
    write_scorecard,
)


def current_scale() -> str:
    """Map REPRO_SCALE onto the bench scale tags ('ci' or 'default')."""
    return "ci" if is_ci_scale() else "default"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks", nargs="*", metavar="ID",
        help=f"benchmark ids (default: all of {', '.join(BENCHMARKS)})",
    )
    parser.add_argument("--scale", choices=("default", "ci"), default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--out-dir", default=".")
    args = parser.parse_args(argv)

    scale = args.scale or current_scale()
    ids = [b.lower() for b in args.benchmarks] or list(BENCHMARKS)
    unknown = [b for b in ids if b not in BENCHMARKS]
    if unknown:
        parser.error(f"unknown benchmark(s): {', '.join(unknown)}")
    for bench_id in ids:
        card = run_benchmark(bench_id, scale=scale, workers=args.workers)
        path = write_scorecard(card, args.out_dir)
        print(f"{card.summary()} -> {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
