"""Ablation A1 — quarantine-policy thresholds (DESIGN.md §5).

The §6 tradeoff dial: a lax policy quarantines fast (low latency, more
false positives if signals are noisy); a strict confession-gated policy
quarantines late but precisely.  We sweep the quarantine threshold over
the same event history and report precision/recall/latency.
"""

import dataclasses

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.core.confidence import SuspicionTracker
from repro.core.events import EventKind
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.detection.signals import SignalAnalyzer


def _synthetic_history(seed=0, n_cores=400, n_bad=6, horizon=90.0):
    """Event stream: bad cores signal often, background signals rarely."""
    rng = np.random.default_rng(seed)
    bad = {f"m{idx:03d}/c00" for idx in range(n_bad)}
    events = []  # (time, core, kind)
    for core in bad:
        for _ in range(int(rng.poisson(8))):
            events.append((float(rng.uniform(0, horizon)), core,
                           EventKind.SELF_CHECK_FAILURE))
    for _ in range(int(rng.poisson(120))):
        core = f"m{rng.integers(n_cores):03d}/c{rng.integers(4):02d}"
        events.append((float(rng.uniform(0, horizon)), core,
                       EventKind.CRASH))
    events.sort()
    return events, bad


def _evaluate(threshold: float, events, bad):
    analyzer = SignalAnalyzer(tracker=SuspicionTracker())
    policy = QuarantinePolicy(
        PolicyConfig(
            monitor_threshold=min(1.0, threshold),
            retest_threshold=min(2.0, threshold),
            quarantine_threshold=threshold,
            require_confession_below=threshold,
        ),
        fleet_cores=2000,
    )
    quarantine_time = {}
    from repro.core.events import CeeEvent, Reporter

    for t, core, kind in events:
        analyzer.ingest(CeeEvent(
            time_days=t, machine_id=core.split("/")[0], core_id=core,
            kind=kind, reporter=Reporter.AUTOMATED,
        ))
        score = analyzer.tracker.score(core, t)
        decision = policy.decide(core, score)
        if decision.action in (Action.QUARANTINE_CORE,
                               Action.QUARANTINE_MACHINE):
            quarantine_time.setdefault(core, t)
    flagged = set(quarantine_time)
    tp = len(flagged & bad)
    fp = len(flagged - bad)
    precision = tp / len(flagged) if flagged else 1.0
    recall = tp / len(bad)
    latencies = [quarantine_time[c] for c in flagged & bad]
    latency = sum(latencies) / len(latencies) if latencies else float("nan")
    return precision, recall, latency, fp


def run_threshold_ablation(seed=0, n_cores=400):
    events, bad = _synthetic_history(seed, n_cores=n_cores)
    rows = []
    results = {}
    for threshold in (2.0, 4.0, 6.0, 10.0, 16.0):
        precision, recall, latency, fp = _evaluate(threshold, events, bad)
        results[threshold] = (precision, recall, latency, fp)
        rows.append([
            f"{threshold:.0f}", f"{precision:.2f}", f"{recall:.2f}",
            f"{latency:.0f}d", fp,
        ])
    return results, render_table(
        ["quarantine threshold", "precision", "recall",
         "mean days to quarantine", "false positives"],
        rows,
        title="A1: policy-threshold ablation (§6 tradeoff)",
    )


def test_a1_policy_thresholds(benchmark, show):
    results, rendered = benchmark.pedantic(
        run_threshold_ablation, kwargs=dict(n_cores=scaled(150, 400)),
        rounds=1, iterations=1,
    )
    show(rendered)
    strict = results[16.0]
    lax = results[2.0]
    # Strict policies are at least as precise; lax ones recall faster.
    assert strict[0] >= lax[0]
    assert lax[1] >= strict[1]
