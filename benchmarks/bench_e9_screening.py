"""E9 — offline vs online screening tradeoff (§6)."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_screening_tradeoff


def test_e9_screening_tradeoff(benchmark, show):
    result = benchmark.pedantic(
        run_screening_tradeoff, kwargs=dict(n_rates=scaled(40, 120)),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert not result["online_caught_gated"]
    assert result["offline_caught_gated"]
    by_label = dict(zip(result["labels"], result["frontier"]))
    assert by_label["online daily"]["median_days_to_detect"] < \
        by_label["online weekly"]["median_days_to_detect"]
