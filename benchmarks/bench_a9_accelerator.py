"""A9 — CEEs in accelerator silicon (§9).

"One might expect to see CEEs in these devices as well.  There might be
novel challenges in detecting and mitigating CEEs in non-CPU settings."

A systolic matmul unit with one defective processing element: the
corruption signature is *structured* (one output-column residue class),
tile-level golden screening replaces the per-op corpus, and the ABFT
checksum row rides the same pass for near-free detection.
"""

import numpy as np

from repro.analysis.figures import render_table
from repro.silicon.accelerator import (
    MatrixAccelerator,
    PeDefect,
    abft_tile_check,
    column_error_signature,
    screen_accelerator,
)


def run_accelerator_study(seed=0, n_tiles=12):
    rng = np.random.default_rng(seed)
    healthy = MatrixAccelerator("a9/h", size=8, rng=np.random.default_rng(1))
    defective = MatrixAccelerator(
        "a9/bad", size=8,
        defects=[PeDefect(row=2, col=5, bit=17, rate=0.05)],
        rng=np.random.default_rng(2),
    )

    def tile():
        a = [[int(x) for x in row] for row in rng.integers(0, 2**32, (8, 8))]
        b = [[int(x) for x in row] for row in rng.integers(0, 2**32, (8, 8))]
        return a, b

    # 1. structured signature
    signature: dict[int, int] = {}
    corrupt_tiles = 0
    for _ in range(n_tiles):
        a, b = tile()
        observed = defective.matmul(a, b)
        expected = defective.golden_matmul(a, b)
        tile_sig = column_error_signature(observed, expected, 8)
        corrupt_tiles += bool(tile_sig)
        for key, count in tile_sig.items():
            signature[key] = signature.get(key, 0) + count

    # 2. ABFT catches corrupt tiles in-line
    abft_flagged = 0
    abft_silent_wrong = 0
    for _ in range(n_tiles):
        a, b = tile()
        body, consistent = abft_tile_check(defective, a, b)
        expected = defective.golden_matmul(a, b)
        if not consistent:
            abft_flagged += 1
        elif body != expected:
            abft_silent_wrong += 1

    healthy_screen = screen_accelerator(healthy, n_tiles=6, seed=3)
    defective_screen = screen_accelerator(defective, n_tiles=6, seed=3)

    rows = [
        ["corrupt tiles (of %d)" % n_tiles, corrupt_tiles],
        ["error column classes", sorted(signature)],
        ["ABFT tiles flagged", abft_flagged],
        ["ABFT silent wrong", abft_silent_wrong],
        ["tile screening: healthy passes", healthy_screen],
        ["tile screening: defective passes", defective_screen],
    ]
    return {
        "signature_classes": set(signature),
        "corrupt_tiles": corrupt_tiles,
        "abft_flagged": abft_flagged,
        "abft_silent_wrong": abft_silent_wrong,
        "healthy_screen": healthy_screen,
        "defective_screen": defective_screen,
    }, render_table(["quantity", "value"], rows,
                    title="A9: CEEs in a systolic matmul accelerator")


def test_a9_accelerator(benchmark, show):
    # n_tiles stays fixed: the ABFT silent-wrong assertion is sensitive
    # to the defect rng stream, and 12 tiles is already smoke-test sized.
    result, rendered = benchmark.pedantic(
        run_accelerator_study, kwargs=dict(n_tiles=12),
        rounds=1, iterations=1,
    )
    show(rendered)
    assert result["signature_classes"] == {5}   # structured, not random
    assert result["corrupt_tiles"] > 0
    assert result["abft_flagged"] > 0
    assert result["abft_silent_wrong"] == 0
    assert result["healthy_screen"] and not result["defective_screen"]
