"""Ablation A4 — checkpoint granule size (DESIGN.md §5).

§7 points at the deterministic-replay literature for choosing "the
largest possible computation granules"; the tradeoff is checkpoint
overhead (favoring big granules) against retry waste (favoring small
ones).  We sweep granule size against a fixed defective pool.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.mitigation.checkpoint import CheckpointRuntime
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op


def _pool(seed=0):
    pool = [Core(f"a4/c{i}", rng=np.random.default_rng(30 + i))
            for i in range(4)]
    pool[0] = Core(
        "a4/bad",
        defects=[StuckBitDefect("d", bit=61, base_rate=4e-2,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )
    return pool


def _step(core, state, item):
    return state + [core.execute(Op.ADD, state[-1] if state else 0, item)]


def _check(state):
    return all(b >= a for a, b in zip(state, state[1:]))


def run_granule_ablation(seed=0, n_items=192):
    items = list(range(1, n_items + 1))
    rows = []
    overheads = {}
    for granule in (4, 16, 64, n_items):
        runtime = CheckpointRuntime(
            _pool(seed), step=_step, check=_check,
            granule=granule, checkpoint_cost_items=2.0,
        )
        state = runtime.run([], items)
        assert len(state) == n_items
        stats = runtime.stats
        overheads[granule] = stats.overhead_factor
        rows.append([
            granule,
            stats.granules_retried,
            stats.items_wasted,
            f"{stats.checkpoint_cost_items:.0f}",
            f"{stats.overhead_factor:.3f}x",
        ])
    return overheads, render_table(
        ["granule", "retries", "items wasted", "checkpoint cost",
         "total overhead"],
        rows,
        title="A4: checkpoint-granule ablation (1 of 4 cores mercurial)",
    )


def test_a4_granule_size(benchmark, show):
    overheads, rendered = benchmark.pedantic(
        run_granule_ablation, kwargs=dict(n_items=scaled(96, 192)),
        rounds=1, iterations=1,
    )
    show(rendered)
    # The sweep must exhibit the tradeoff's two ends: the best granule
    # is strictly interior OR the curve is monotone in one direction —
    # either way overheads differ measurably across the sweep.
    values = list(overheads.values())
    assert max(values) > min(values)
