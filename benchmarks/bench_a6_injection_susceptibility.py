"""A6 — fault-injection susceptibility of sorting (§9 / ref [11]).

"That prior work evaluated algorithms using fault injection, a
technique that does not require access to a large fleet" — the Guan et
al. [11] methodology on our own sorts: single-fault injection sweeps
over (a) an unchecked sort, (b) the naive self-checked sort, (c) the
resilient sort with cross-core verification.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.mitigation.resilient.sorting import verify_sorted
from repro.silicon.core import Core
from repro.silicon.injector import InjectionCampaign, InjectionOutcome
from repro.workloads.base import WorkloadResult, digest_ints
from repro.workloads.sorting import is_sorted_on, merge_sort

VALUES = [int(x) for x in np.random.default_rng(7).integers(0, 2**40, 120)]


def _unchecked(core) -> WorkloadResult:
    output = merge_sort(core, VALUES)
    return WorkloadResult(name="sort", output_digest=digest_ints(output))


def _self_checked(core) -> WorkloadResult:
    output = merge_sort(core, VALUES)
    return WorkloadResult(
        name="sort+check",
        output_digest=digest_ints(output),
        app_detected=not is_sorted_on(core, output),
    )


def _resilient(core) -> WorkloadResult:
    output = merge_sort(core, VALUES)
    verifier = Core("a6/verifier", rng=np.random.default_rng(1))
    return WorkloadResult(
        name="sort+resilient",
        output_digest=digest_ints(output),
        app_detected=not verify_sorted(verifier, VALUES, output),
    )


def run_susceptibility(n_sites=120, seed=3):
    rows = []
    sdc = {}
    for label, work in (("unchecked", _unchecked),
                        ("naive self-check", _self_checked),
                        ("resilient verify", _resilient)):
        campaign = InjectionCampaign(work)
        report = campaign.run(n_sites=n_sites, rng=np.random.default_rng(seed))
        sdc[label] = report.sdc_fraction
        rows.append([
            label,
            f"{report.fraction(InjectionOutcome.BENIGN):.1%}",
            f"{report.fraction(InjectionOutcome.DETECTED):.1%}",
            f"{report.fraction(InjectionOutcome.CRASHED):.1%}",
            f"{report.sdc_fraction:.1%}",
        ])
    return sdc, render_table(
        ["sort variant", "benign", "detected", "crashed", "SILENT (SDC)"],
        rows,
        title=f"A6: single-fault injection, {n_sites} sites per variant",
    )


def test_a6_injection_susceptibility(benchmark, show):
    sdc, rendered = benchmark.pedantic(
        run_susceptibility, kwargs=dict(n_sites=scaled(40, 120)),
        rounds=1, iterations=1,
    )
    show(rendered)
    assert sdc["unchecked"] > 0
    assert sdc["resilient verify"] == 0.0
    assert sdc["resilient verify"] <= sdc["naive self-check"] <= \
        sdc["unchecked"] + 1e-9
