"""E6 — corruption rates vary by many orders of magnitude (§2)."""

from benchmarks.conftest import is_ci_scale
from repro.analysis.experiments import run_rate_spread


def test_e6_rate_spread(benchmark, show):
    n_defects = 80 if is_ci_scale() else 400
    result = benchmark.pedantic(
        run_rate_spread, kwargs=dict(n_defects=n_defects),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert result["spread_orders"] >= 3.0
