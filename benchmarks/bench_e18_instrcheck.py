"""E18 — instruction-level checking: the cost-vs-coverage grid."""

from benchmarks.conftest import is_ci_scale

from repro.analysis.experiments import run_instrcheck_grid


def test_e18_instrcheck_grid(benchmark, show):
    units = 160 if is_ci_scale() else 320
    result = benchmark.pedantic(
        run_instrcheck_grid, kwargs=dict(units=units), rounds=1, iterations=1
    )
    show(result["rendered"])

    assert result["arms"] == ["screen", "ithica", "reptfd", "meek", "e2e"]
    full_rate = result["rates"][-1]
    low, high = result["prevalences"]

    # The headline physics, on the measured grid:
    # cross-core arms dominate same-core duplication once a
    # deterministic operand-pattern core joins the fleet...
    assert result["cross_core_wins"]
    # ...and every in-flight checking arm catches at least as much
    # pre-propagation as screening, which catches cores, not results.
    assert result["precatch_beats_screening"]

    grid = result["grid"]
    # ITHICA at the probabilistic-only prevalence is the cheap hero,
    # then collapses when the deterministic core appears.
    assert grid[low]["ithica"][full_rate].coverage == 1.0
    assert grid[high]["ithica"][full_rate].coverage < 0.5
    assert grid[high]["ithica"][full_rate].cees_escaped > 0

    # MEEK and RepTFD pay a second core but see the deterministic core.
    for arm in ("meek", "reptfd"):
        assert grid[high][arm][full_rate].coverage > \
            grid[high]["ithica"][full_rate].coverage

    # RepTFD is the only arm that corrects what it catches: at full
    # sampling nothing escapes and rollbacks delivered correct bytes.
    reptfd = grid[high]["reptfd"][full_rate]
    assert reptfd.cees_escaped == 0
    assert reptfd.flagged_clean_units > 0
    assert reptfd.replays > 0

    # MEEK's bounded check-lag queue overruns at full sampling:
    # coverage honestly lost and accounted, never silently.
    assert grid[high]["meek"][full_rate].lag_drops > 0

    # Screening's pre-propagation coverage is ~zero by construction,
    # but it does quarantine the bad cores (stops the bleeding).
    for key in (low, high):
        screen = grid[key]["screen"][full_rate]
        assert screen.cees_caught == 0
        assert screen.quarantine_tick

    # Cost monotonicity: more sampling is never cheaper, and every
    # slowdown stays under the naive 3x TMR bill the paper dreads.
    for key in (low, high):
        for arm in result["arms"]:
            slowdowns = [
                grid[key][arm][rate].slowdown_factor
                for rate in result["rates"]
            ]
            assert slowdowns == sorted(slowdowns)
            assert all(1.0 <= s < 3.0 for s in slowdowns)
