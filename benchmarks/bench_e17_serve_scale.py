"""E17 — serve at scale: the prevalence × mitigation-spend grid."""

from benchmarks.conftest import is_ci_scale

from repro.analysis.experiments import run_serve_at_scale


def test_e17_serve_scale(benchmark, show):
    ticks = 200 if is_ci_scale() else 600
    result = benchmark.pedantic(
        run_serve_at_scale, kwargs=dict(ticks=ticks), rounds=1, iterations=1
    )
    show(result["rendered"])

    # The trusting baseline delivers corrupt bytes as fresh OK at every
    # prevalence level, and more prevalence means more corruption.
    base_escapes = [
        result["grid"][key]["baseline"].corrupt_escapes
        for key in result["prevalences"]
    ]
    assert all(n > 0 for n in base_escapes)
    assert base_escapes == sorted(base_escapes)

    # Hedging + budgeted retries + breakers hold user-visible corruption
    # at zero across the whole grid...
    assert result["hardening_wins"]
    for key in result["prevalences"]:
        comp = result["comparisons"][key]
        assert comp["escape_rate_full"] == 0.0
        assert comp["escape_rate_retries_breakers"] == 0.0
        assert comp["escape_rate_baseline"] > 0.0
        # ...while the full stack also *improves* the tail: hedges cut
        # the straggler tail the baseline eats raw.
        assert comp["p99_cost"] < 3.0
        assert comp["p999_cost"] < 3.0

    # Availability accounting: the baseline's "availability" includes
    # the corrupt responses it silently served, so compare on ground
    # truth — correct fresh responses per arrival, and answered rate
    # (fresh + labelled-stale) per arrival.  Full wins both everywhere.
    for key in result["prevalences"]:
        base = result["grid"][key]["baseline"]
        full = result["grid"][key]["full"]
        assert (
            full.valid_ok / full.total_arrivals
            > base.valid_ok / base.total_arrivals
        )
        assert full.answered_rate > base.answered_rate

    # The degradation ladder and hedging actually engaged somewhere in
    # the grid (this is a robustness bench, not a quiet one).
    full_cards = [
        result["grid"][key]["full"] for key in result["prevalences"]
    ]
    assert any(card.hedges > 0 for card in full_cards)
    assert any(card.degraded_ticks for card in full_cards)
    assert all(card.quarantine_tick for card in full_cards)
