"""Ablation A2 — online screening duty cycle (DESIGN.md §5).

§4: detection quality "depends on ... how many cycles devoted to
testing".  Sweep the spare-cycle budget; measure confession probability
per screen against a population of sampled defects and the compute
bill.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.economics import ScreeningPolicy
from repro.analysis.figures import render_table
from repro.silicon.catalog import sample_defect
from repro.silicon.environment import NOMINAL
from repro.workloads.generator import blended_op_mix


def run_duty_cycle_ablation(seed=0, n_defects=150):
    rng = np.random.default_rng(seed)
    mix = blended_op_mix()
    rates = []
    for index in range(n_defects):
        defect = sample_defect(rng, f"a2/d{index}")
        rate = defect.mean_rate(mix, NOMINAL, age_days=1000.0)
        if rate > 0:
            rates.append(rate)
    rows = []
    results = {}
    for duty_cycle in (0.001, 0.005, 0.02, 0.08):
        corpus_ops = duty_cycle * 5e6
        policy = ScreeningPolicy(period_days=7.0, corpus_ops=corpus_ops)
        caught_weekly = sum(
            1 for r in rates if policy.detection_probability(r) > 0.5
        )
        results[duty_cycle] = caught_weekly / len(rates)
        rows.append([
            f"{duty_cycle:.1%}",
            f"{corpus_ops:.0e}",
            f"{caught_weekly / len(rates):.2f}",
            f"{policy.compute_cost_per_coreday():.1e}",
        ])
    return results, render_table(
        ["duty cycle", "ops/screen", "fraction caught within ~1 screen",
         "compute cost fraction"],
        rows,
        title="A2: duty-cycle ablation (cycles devoted to testing)",
    )


def test_a2_duty_cycle(benchmark, show):
    results, rendered = benchmark.pedantic(
        run_duty_cycle_ablation, kwargs=dict(n_defects=scaled(50, 150)),
        rounds=1, iterations=1,
    )
    show(rendered)
    duties = sorted(results)
    coverage = [results[d] for d in duties]
    assert coverage == sorted(coverage)  # more cycles, more coverage
    assert coverage[-1] > coverage[0]
