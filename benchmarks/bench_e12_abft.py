"""E12 — SDC-resilient algorithms [11, 27]: ABFT matmul, LU, sorting."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_abft


def test_e12_abft(benchmark, show):
    result = benchmark.pedantic(
        run_abft, kwargs=dict(n_trials=scaled(6, 8)),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert result["vanilla_wrong"] > 0
    assert result["abft_silent_wrong"] == 0
    assert result["plain_sort_wrong"]
    assert result["resilient_sort_ok"]
    assert result["lu_detections"] > 0
