"""E5 — §3's 'factor of two of extra work ... triple work' measured."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_redundancy_cost


def test_e5_redundancy_cost(benchmark, show):
    result = benchmark.pedantic(
        run_redundancy_cost, kwargs=dict(n_units=scaled(4, 6)),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert 1.9 <= result["dmr_factor"] <= 2.1
    assert 2.9 <= result["tmr_factor"] <= 3.1
