"""Benchmark harness support.

Each benchmark runs one experiment from DESIGN.md's index, prints the
regenerated table/series (the paper's rows), and asserts the
reproduction contract (shape, not absolute numbers).

Scale: set ``REPRO_SCALE=ci`` for quick smoke runs; the default scale
mirrors the numbers quoted in EXPERIMENTS.md.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_SCALE", "full")


def is_ci_scale() -> bool:
    return SCALE == "ci"


def scaled(ci_value, full_value):
    """Pick a problem size by ``REPRO_SCALE`` — the one uniform hook.

    Every benchmark that takes a size parameter routes it through this
    helper, so ``REPRO_SCALE=ci`` shrinks the whole suite consistently
    instead of each file re-reading the environment its own way.
    """
    return ci_value if is_ci_scale() else full_value


@pytest.fixture
def show():
    """Print a rendered experiment block under pytest's capture."""

    def _show(rendered: str) -> None:
        print()
        print(rendered)

    return _show
