"""Benchmark harness support.

Each benchmark runs one experiment from DESIGN.md's index, prints the
regenerated table/series (the paper's rows), and asserts the
reproduction contract (shape, not absolute numbers).

Scale: set ``REPRO_SCALE=ci`` for quick smoke runs; the default scale
mirrors the numbers quoted in EXPERIMENTS.md.
"""

import os

import pytest

SCALE = os.environ.get("REPRO_SCALE", "full")


def is_ci_scale() -> bool:
    return SCALE == "ci"


@pytest.fixture
def show():
    """Print a rendered experiment block under pytest's capture."""

    def _show(rendered: str) -> None:
        print()
        print(rendered)

    return _show
