"""E4 — corruption propagation: bit flips, DB replicas, GC data loss."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_propagation


def test_e4_propagation(benchmark, show):
    result = benchmark.pedantic(
        run_propagation, kwargs=dict(n_strings=scaled(120, 300)),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert len(result["flip_positions"]) == 1  # a *particular* bit position
    errors = result["replica_errors"]
    assert errors[1] > 0 and errors[0] == errors[2] == 0.0
    assert result["gc_lost_blocks"] > 0
    assert result["late_detected_losses"] > 0
