"""E13 — complaint concentration: §6's report-service decision rule."""

from repro.analysis.experiments import run_report_concentration


def test_e13_report_concentration(benchmark, show):
    result = benchmark.pedantic(
        run_report_concentration, rounds=1, iterations=1
    )
    show(result["rendered"])
    assert result["top_suspect"] == "m0042/c07"
    assert "m0042/c07" in result["candidates"]
