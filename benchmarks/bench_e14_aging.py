"""E14 — aging: onset distribution, escalation, §4's age-until-onset."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_aging


def test_e14_aging(benchmark, show):
    result = benchmark.pedantic(
        run_aging, kwargs=dict(n_defects=scaled(1000, 3000)),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert 0.4 <= result["model_cdf_365"] <= 0.6
    assert result["escalation"] == sorted(result["escalation"])
    assert result["censored_fraction_730"] > 0.0
