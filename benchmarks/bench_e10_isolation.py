"""E10 — core vs machine quarantine, and §6.1 safe-task placement."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_isolation


def test_e10_isolation(benchmark, show):
    result = benchmark.pedantic(
        run_isolation, kwargs=dict(n_machines=scaled(20, 40)),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert result["core_stranded"] < result["machine_stranded"] / 5
    assert result["machine_healthy_stranded"] > 0
    assert result["safe_task_placements"] > 0
