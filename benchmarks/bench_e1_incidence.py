"""E1 — incidence: 'a few mercurial cores per several thousand machines'."""

from benchmarks.conftest import scaled
from repro.analysis.experiments import run_incidence


def test_e1_incidence(benchmark, show):
    n_machines = scaled(3000, 12000)
    horizon = scaled(120.0, 270.0)
    result = benchmark.pedantic(
        run_incidence,
        kwargs=dict(n_machines=n_machines, horizon_days=horizon),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    # Band contract: "a few per several thousand" = order 0.2-5 per 1000.
    assert 0.1 <= result["truth_per_kmachine"] <= 5.0
    # Detection never exceeds truth, and what is flagged is precise.
    assert result["detected_per_kmachine"] <= result["truth_per_kmachine"]
    if result["detected_per_kmachine"] > 0:
        assert result["precision"] >= 0.8
