"""E11 — mitigation ladder: unprotected vs checkpoint vs DMR vs TMR (§7)."""

from benchmarks.conftest import is_ci_scale
from repro.analysis.experiments import run_mitigation_ladder


def test_e11_mitigation_ladder(benchmark, show):
    n_units = 15 if is_ci_scale() else 40
    result = benchmark.pedantic(
        run_mitigation_ladder, kwargs=dict(n_units=n_units),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert result["escaped_unprotected"] > 0
    assert result["escaped_dmr"] == 0
    assert result["escaped_tmr"] == 0
