"""E3 — the deterministic self-inverting AES miscomputation (§2)."""

from repro.analysis.experiments import run_aes_case


def test_e3_self_inverting_aes(benchmark, show):
    result = benchmark.pedantic(run_aes_case, rounds=1, iterations=1)
    show(result["rendered"])
    assert result["ciphertext_differs"]
    assert result["same_core_roundtrip_identity"]
    assert result["cross_core_garbage"]
    assert result["corpus_catches"]
    assert result["checked_cipher_catches"]
