"""Ablation A3 — the TMR voter itself runs on a core (DESIGN.md §5).

§7: "this relies on the voting mechanism itself being reliable."  We
compare TMR with a host-side (reliable) voter against TMR whose digest
comparisons execute on a defective core.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.mitigation.redundancy import RedundancyExhaustedError, TmrExecutor
from repro.silicon.core import Core
from repro.silicon.defects import OperandPatternDefect
from repro.silicon.units import Op
from repro.workloads.generator import spec_by_name


def run_voter_ablation(seed=0, n_units=60):
    pool = [Core(f"a3/c{i}", rng=np.random.default_rng(10 + i))
            for i in range(3)]
    # A comparator defect that sometimes reports unequal digests equal.
    bad_voter = Core(
        "a3/voter",
        defects=[OperandPatternDefect(
            "voter", mask=0x3, value=0x1, error=1, base_rate=0.9,
            ops=(Op.BEQ,),
        )],
        rng=np.random.default_rng(seed),
    )
    spec = spec_by_name("hashing")
    outcomes = {}
    rows = []
    for label, voter in (("host voter", None), ("defective voter", bad_voter)):
        anomalies = 0
        failures = 0
        for unit in range(n_units):
            executor = TmrExecutor(pool, voter_core=voter)
            try:
                outcome = executor.run(spec.build(seed + unit))
            except RedundancyExhaustedError:
                failures += 1
                continue
            # With three healthy workers any detected "corruption" is a
            # voter artifact.
            anomalies += outcome.detected_corruption
        outcomes[label] = (anomalies, failures)
        rows.append([label, anomalies, failures])
    return outcomes, render_table(
        ["voter", "spurious disagreements", "vote failures"],
        rows,
        title="A3: voter-reliability ablation (healthy workers)",
    )


def test_a3_voter_reliability(benchmark, show):
    outcomes, rendered = benchmark.pedantic(
        run_voter_ablation, kwargs=dict(n_units=scaled(20, 60)),
        rounds=1, iterations=1,
    )
    show(rendered)
    host_anomalies, host_failures = outcomes["host voter"]
    bad_anomalies, bad_failures = outcomes["defective voter"]
    assert host_anomalies == 0 and host_failures == 0
    assert bad_anomalies + bad_failures > 0  # broken voting is visible
