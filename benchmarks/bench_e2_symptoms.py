"""E2 — symptom classes of §2, observed over sampled mercurial cores."""

from benchmarks.conftest import is_ci_scale
from repro.analysis.experiments import run_symptoms
from repro.core.taxonomy import Symptom


def test_e2_symptom_classes(benchmark, show):
    n_cores = 12 if is_ci_scale() else 40
    result = benchmark.pedantic(
        run_symptoms, kwargs=dict(n_cores=n_cores), rounds=1, iterations=1
    )
    show(result["rendered"])
    counts = result["counts"]
    # Shape contract: multiple §2 classes manifest, including the
    # worst one (never detected) — the reason the paper exists.
    assert sum(counts.values()) > 0
    assert counts[Symptom.WRONG_ANSWER_UNDETECTED] > 0
