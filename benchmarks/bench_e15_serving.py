"""E15 — serving under CEE: hardened vs unhardened chaos campaigns."""

from benchmarks.conftest import is_ci_scale

from repro.analysis.experiments import run_serving_under_cee
from repro.core.events import EventKind


def test_e15_serving(benchmark, show):
    ticks = 400 if is_ci_scale() else 1000
    result = benchmark.pedantic(
        run_serving_under_cee, kwargs=dict(ticks=ticks), rounds=1, iterations=1
    )
    show(result["rendered"])

    # Corrupt responses really escape the naive service...
    assert result["escape_rate_unhardened"] > 0.0
    # ...and the hardened stack cuts the escape rate by >= 10x.
    assert (
        result["escape_rate_hardened"]
        <= result["escape_rate_unhardened"] / 10.0
    )

    # The robustness tax stays under 3x on both latency and goodput.
    assert result["p99_cost"] < 3.0
    assert result["goodput_cost"] < 3.0

    # Circuit-breaker trips are visible in the event log...
    trip_events = [
        e for e in result["hardened_events"]
        if e.kind is EventKind.BREAKER_TRIP
    ]
    assert trip_events
    assert any(e.core_id == result["bad_core_id"] for e in trip_events)

    # ...and measurably accelerate quarantine of the offending core
    # compared to per-response validation signals alone.
    assert result["quarantine_tick_breaker"] is not None
    assert result["quarantine_tick_validator_only"] is not None
    assert (
        result["quarantine_tick_breaker"]
        < result["quarantine_tick_validator_only"]
    )
