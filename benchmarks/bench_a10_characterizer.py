"""A10 — from zero-day to regression test, automatically (§2/§6/§9).

The full lifecycle the paper narrates: a pattern-gated defect slips
past the generic corpus ("zero-day"), black-box characterization
recovers the operand gate, and the synthesized regression test joins
the corpus and catches the core deterministically.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.detection.characterize import characterize, synthesize_regression_test
from repro.detection.corpus import TestCorpus
from repro.silicon.core import Core
from repro.silicon.defects import OperandPatternDefect
from repro.silicon.units import Op


def run_characterizer(seed=0, probes_per_op=800):
    zero_day = Core(
        "a10/zero-day",
        defects=[OperandPatternDefect(
            "zd", mask=0x1818, value=0x0810, error=1 << 22,
            base_rate=1.0, ops=(Op.MUL,),
        )],
        rng=np.random.default_rng(seed),
    )
    corpus = TestCorpus.standard(seeds=(1,))
    generic_catches = corpus.screen(zero_day, repetitions=2).confessed

    profile = characterize(zero_day, probes_per_op=probes_per_op)
    test = synthesize_regression_test(profile)
    targeted_catches = test is not None and not test.run(zero_day)
    healthy_passes = test is not None and test.run(
        Core("a10/h", rng=np.random.default_rng(1))
    )
    if test is not None:
        corpus.add_test(test)
    corpus_catches_now = corpus.screen(zero_day).confessed

    rows = [
        ["generic corpus catches zero-day", generic_catches],
        ["recovered gate mask", hex(profile.trigger_mask)
         if profile.trigger_mask is not None else "-"],
        ["recovered gate value", hex(profile.trigger_value)
         if profile.trigger_value is not None else "-"],
        ["synthesized test catches core", targeted_catches],
        ["synthesized test passes healthy", healthy_passes],
        ["expanded corpus catches core", corpus_catches_now],
    ]
    return {
        "generic_catches": generic_catches,
        "mask": profile.trigger_mask,
        "value": profile.trigger_value,
        "targeted_catches": targeted_catches,
        "healthy_passes": healthy_passes,
        "corpus_catches_now": corpus_catches_now,
    }, render_table(["step", "result"], rows,
                    title="A10: zero-day -> characterize -> regression test")


def test_a10_characterizer(benchmark, show):
    result, rendered = benchmark.pedantic(
        run_characterizer, kwargs=dict(probes_per_op=scaled(500, 800)),
        rounds=1, iterations=1,
    )
    show(rendered)
    assert not result["generic_catches"]          # the zero-day gap
    assert result["mask"] == 0x1818               # exact gate recovered
    assert result["value"] == 0x0810
    assert result["targeted_catches"]
    assert result["healthy_passes"]
    assert result["corpus_catches_now"]           # §6's corpus expansion
