"""A7 — selective replication of critical computations (§9).

"Perhaps compilers could ... automatically replicate just these
computations."  Cost/protection frontier: unprotected vs selective
(critical stages only) vs full TMR.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.mitigation.selective import (
    SelectiveReplicator,
    Stage,
    full_tmr_baseline,
    unprotected_baseline,
)
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op
from repro.workloads.base import WorkloadResult, digest_ints


def _stage_work(seed, length=80):
    def work(core):
        total = seed
        for value in range(length):
            total = core.execute(Op.ADD, total, value ^ seed)
            total = core.execute(Op.XOR, total, value * 3 + 1)
        return WorkloadResult(name=f"s{seed}", output_digest=digest_ints([total]))
    return work


def _stages(n=24, critical_every=6):
    return [
        Stage(
            name=f"s{i}",
            work=_stage_work(i + 1),
            critical=None,
            blast_radius=50_000 if i % critical_every == 0 else 1,
        )
        for i in range(n)
    ]


def _pool(seed=0):
    pool = [Core(f"a7/c{i}", rng=np.random.default_rng(40 + i))
            for i in range(5)]
    pool[0] = Core(
        "a7/bad",
        defects=[StuckBitDefect("d", bit=37, base_rate=2e-3,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )
    return pool


def run_selective_ablation(seed=0, n_stages=24):
    stages = _stages(n=n_stages)
    reference = [
        stage.work(Core("a7/ref", rng=np.random.default_rng(77)))
        for stage in stages
    ]

    def wrong_count(results):
        return sum(
            r.output_digest != e.output_digest
            for r, e in zip(results, reference)
        )

    unprot = unprotected_baseline(_pool(seed)[0], stages)
    replicator = SelectiveReplicator(_pool(seed), criticality_threshold=2.0)
    selective = replicator.run_pipeline(stages)
    critical_indices = [i for i, s in enumerate(stages)
                        if s.blast_radius > 1]
    critical_wrong = sum(
        selective[i].output_digest != reference[i].output_digest
        for i in critical_indices
    )
    full, full_executions = full_tmr_baseline(_pool(seed), stages)

    rows = [
        ["unprotected", wrong_count(unprot), "-", "1.00x"],
        ["selective (critical only)", wrong_count(selective),
         critical_wrong, f"{replicator.stats.cost_factor:.2f}x"],
        ["full TMR", wrong_count(full), 0,
         f"{full_executions / len(stages):.2f}x"],
    ]
    return {
        "unprotected_wrong": wrong_count(unprot),
        "selective_wrong": wrong_count(selective),
        "selective_critical_wrong": critical_wrong,
        "selective_cost": replicator.stats.cost_factor,
        "full_cost": full_executions / len(stages),
        "full_wrong": wrong_count(full),
    }, render_table(
        ["strategy", "wrong stages", "wrong CRITICAL stages", "cost"],
        rows,
        title=(
            f"A7: selective replication "
            f"({len(critical_indices)} of {n_stages} stages critical)"
        ),
    )


def test_a7_selective_replication(benchmark, show):
    result, rendered = benchmark.pedantic(
        run_selective_ablation, kwargs=dict(n_stages=scaled(12, 24)),
        rounds=1, iterations=1,
    )
    show(rendered)
    assert result["selective_critical_wrong"] == 0  # the §9 promise
    assert result["full_wrong"] == 0
    assert 1.0 < result["selective_cost"] < result["full_cost"]
