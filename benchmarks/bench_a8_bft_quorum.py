"""A8 — quorum replication against a mercurial replica (§8).

"BFT might be applicable to CEEs in some cases": an n=3f+1 quorum
service commits only certificate-backed results, so a mercurial replica
can neither corrupt committed state nor hide — its dissent record
identifies it.
"""

import numpy as np

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.mitigation.bft import QuorumReplicatedService
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op


def run_bft(seed=0, n_commands=40):
    def build(index, defective):
        defects = ()
        if defective:
            defects = [StuckBitDefect("d", bit=23, base_rate=0.3,
                                      unit=FunctionalUnit.ALU)]
        return Core(f"a8/r{index}", defects=defects,
                    rng=np.random.default_rng(seed + index))

    service = QuorumReplicatedService(
        [build(0, False), build(1, True), build(2, False), build(3, False)],
        f=1,
    )
    reference = Core("a8/ref", rng=np.random.default_rng(99))
    expected_state: dict[str, int] = {}

    def command(core, state, step):
        key = f"k{step % 5}"
        state[key] = core.execute(Op.ADD, state.get(key, 0), step + 1)
        state[key] = core.execute(Op.XOR, state[key], 0x5A5A)
        return state

    wrong_commits = 0
    for step in range(n_commands):
        committed = service.submit(
            lambda core, state, step=step: command(core, state, step)
        )
        expected_state = command(reference, expected_state, step)
        wrong_commits += committed != expected_state

    suspects = service.suspect_replicas()
    rows = [
        ["commands committed", service.stats.commands],
        ["wrong committed states", wrong_commits],
        ["execution cost factor", f"{service.stats.cost_factor:.1f}x"],
        ["dissents recorded", service.stats.dissents],
        ["suspect replicas (recidivist dissenters)", suspects],
    ]
    return {
        "wrong_commits": wrong_commits,
        "cost": service.stats.cost_factor,
        "suspects": suspects,
        "dissents": service.stats.dissents,
    }, render_table(["quantity", "value"], rows,
                    title="A8: BFT quorum with 1 mercurial of 4 replicas")


def test_a8_bft_quorum(benchmark, show):
    result, rendered = benchmark.pedantic(
        run_bft, kwargs=dict(n_commands=scaled(16, 40)),
        rounds=1, iterations=1,
    )
    show(rendered)
    assert result["wrong_commits"] == 0     # safety holds
    assert result["cost"] == 4.0            # the §8 price
    assert result["suspects"] == [1]        # and detection comes free
