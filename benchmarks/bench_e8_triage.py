"""E8 — 'roughly half of human-identified suspects are actually proven'."""

from benchmarks.conftest import is_ci_scale
from repro.analysis.experiments import run_triage


def test_e8_triage_confirmation(benchmark, show):
    n_incidents = 80 if is_ci_scale() else 250
    result = benchmark.pedantic(
        run_triage, kwargs=dict(n_incidents=n_incidents),
        rounds=1, iterations=1,
    )
    show(result["rendered"])
    assert 0.3 <= result["confirmed_fraction"] <= 0.7
    # "the other half is a MIX of false accusations and limited
    # reproducibility": both must be present.
    assert result["fractions"]["false_accusation"] > 0
    assert result["fractions"]["unreproducible"] > 0
