"""Ablation A5 — SKU-mixture heterogeneity (DESIGN.md §5).

§2: "the rate is not uniform across CPU products."  Compare fleets of
only-old vs only-new SKUs vs the default mixture; incidence should
track the §5 scaling argument (newer, denser nodes fail more).
"""

from benchmarks.conftest import scaled
from repro.analysis.figures import render_table
from repro.fleet.population import FleetBuilder
from repro.fleet.product import DEFAULT_PRODUCTS


def run_sku_ablation(n_machines=6000, seed=5):
    portfolios = {
        "oldest SKU only": (DEFAULT_PRODUCTS[0],),
        "default mixture": DEFAULT_PRODUCTS,
        "newest SKU only": (DEFAULT_PRODUCTS[-1],),
    }
    rows = []
    rates = {}
    for label, products in portfolios.items():
        _, truth = FleetBuilder(products=products, seed=seed).build(n_machines)
        rate = 1000.0 * truth.n_mercurial / n_machines
        rates[label] = rate
        rows.append([label, truth.n_mercurial, f"{rate:.2f}"])
    return rates, render_table(
        ["portfolio", "mercurial cores", "per 1000 machines"],
        rows,
        title=f"A5: SKU-mixture ablation ({n_machines} machines)",
    )


def test_a5_sku_mixture(benchmark, show):
    rates, rendered = benchmark.pedantic(
        run_sku_ablation, kwargs=dict(n_machines=scaled(2000, 6000)),
        rounds=1, iterations=1,
    )
    show(rendered)
    assert rates["newest SKU only"] > rates["oldest SKU only"]
    assert rates["oldest SKU only"] <= rates["default mixture"] <= \
        rates["newest SKU only"]
