"""F1 — Figure 1: Reported CEE rates (normalized).

Paper: two series over time, normalized to an arbitrary baseline;
user-reported roughly flat, automatically-reported gradually increasing.
"""

from benchmarks.conftest import is_ci_scale
from repro.analysis.experiments import run_fig1
from repro.analysis.stats import trend_slope


def test_fig1_reported_rates(benchmark, show):
    if is_ci_scale():
        kwargs = dict(n_machines=2000, horizon_days=360.0,
                      warmup_days=120.0, prevalence_scale=16.0)
    else:
        kwargs = dict(n_machines=12000, horizon_days=540.0,
                      warmup_days=240.0, prevalence_scale=8.0)
    result = benchmark.pedantic(
        run_fig1, kwargs=kwargs, rounds=1, iterations=1
    )
    show(result["rendered"])
    show(
        f"auto slope: {result['auto_slope']:+.3e}/day   "
        f"human slope: {result['human_slope']:+.3e}/day   "
        f"(paper: automated series gradually increasing)"
    )
    auto_values = [v for _, v in result["auto_series"]]
    assert any(v > 0 for v in auto_values), "no automated CEE reports at all"
    # Shape contract: the automated series trends upward — compare the
    # mean of the last third against the first third (robust to bucket
    # noise), and require a non-negative fitted slope.
    third = max(1, len(auto_values) // 3)
    early = sum(auto_values[:third]) / third
    late = sum(auto_values[-third:]) / third
    assert late >= early, "automated series should rise over the campaign"
    assert result["auto_slope"] >= 0.0
