"""E7 — f/V/T sensitivity sweeps and the shared copy/vector logic (§5)."""

from repro.analysis.experiments import run_fvt


def test_e7_fvt_sweeps(benchmark, show):
    result = benchmark.pedantic(run_fvt, rounds=1, iterations=1)
    show(result["rendered"])
    assert result["freq_rates"] == sorted(result["freq_rates"])
    assert result["volt_rates"] == sorted(result["volt_rates"], reverse=True)
    assert result["copy_corruptions"] > 0
    assert result["vector_corruptions"] > 0
