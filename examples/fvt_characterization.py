"""Characterizing a suspect core across the (f, V, T) envelope (§5).

Shows the two sensitivities the paper calls out — a frequency-marginal
defect and a voltage-margin defect whose rate *rises* at lower DVFS
states (the surprising "lower frequency increases the failure rate"
anomaly) — plus a shared-logic defect confessing through both the copy
and vector paths.

Run:  python examples/fvt_characterization.py
"""

import numpy as np

from repro.analysis.figures import render_table
from repro.silicon import (
    Core,
    DvfsTable,
    FrequencySensitivity,
    SharedLogicDefect,
    StuckBitDefect,
    VoltageMarginSensitivity,
)
from repro.silicon.units import FunctionalUnit
from repro.workloads.copying import copy_words
from repro.workloads.vectorops import xor_fold


def main() -> None:
    table = DvfsTable()
    freq_defect = StuckBitDefect(
        "freq-marginal", bit=11, base_rate=1e-6,
        unit=FunctionalUnit.ALU,
        sensitivity=FrequencySensitivity(factor_per_ghz=5.0),
    )
    volt_defect = StuckBitDefect(
        "volt-marginal", bit=12, base_rate=1e-6,
        unit=FunctionalUnit.ALU,
        sensitivity=VoltageMarginSensitivity(factor_per_50mv=3.5),
    )

    rows = []
    for index in range(len(table.states)):
        env = table.operating_point(index)
        rows.append([
            f"{env.frequency_ghz:.1f} GHz / {env.voltage_v:.2f} V",
            f"{freq_defect.effective_rate('add', env, 10.0):.2e}",
            f"{volt_defect.effective_rate('add', env, 10.0):.2e}",
        ])
    print(render_table(
        ["DVFS state", "freq-marginal defect", "volt-marginal defect"],
        rows,
        title="per-op corruption rate across the DVFS ladder",
    ))
    print("\nnote the right column: the voltage-margin defect fires HARDER")
    print("at the lowest frequency — §5's anomaly, via DVFS f/V coupling.\n")

    shared = Core(
        "fvt/shared",
        defects=[SharedLogicDefect("shuffle", bit=13, base_rate=2e-3)],
        rng=np.random.default_rng(0),
    )
    reference = Core("fvt/ref", rng=np.random.default_rng(1))
    rng = np.random.default_rng(2)
    copy_hits = vector_hits = 0
    trials = 25
    for _ in range(trials):
        words = [int(x) for x in rng.integers(0, 2**60, 256)]
        copy_hits += copy_words(shared, words) != copy_words(reference, words)
        vector_hits += xor_fold(shared, words) != xor_fold(reference, words)
    print("shared-logic defect (one physical defect, two symptom families):")
    print(f"  copy corruption in   {copy_hits}/{trials} trials")
    print(f"  vector corruption in {vector_hits}/{trials} trials")
    print("\n'We discovered that both kinds of operations share the same")
    print("hardware logic ... the mapping of instructions to possibly-")
    print("defective hardware is non-obvious.' (§5)")


if __name__ == "__main__":
    main()
