"""A request-serving service surviving a mercurial core, under chaos.

§7 asks for software that *tolerates* mercurial cores.  This example
runs the same chaos campaign twice — a late-onset defect activates on
one server core mid-campaign, a healthy replica crashes and recovers, a
machine-check burst and a traffic burst land in the second half — first
against a naive service, then against the hardened one (end-to-end
validation, core-diverse retries, hedged requests, per-core circuit
breakers wired into the quarantine policy, load shedding).

The naive service silently returns corrupted-but-well-formed responses;
the hardened one catches them at the client, trips a breaker on the
offending core, and the quarantine loop pulls the core while the
scheduler re-places the replica on a spare.

Run:  python examples/serving_chaos_campaign.py
"""

from repro.core.events import EventKind
from repro.serving import (
    CampaignConfig,
    ChaosSchedule,
    HardeningConfig,
    ServingCampaign,
    build_serving_fleet,
)

TICKS = 600
ONSET_AGE_DAYS = 400.0


def run_campaign(hardening: HardeningConfig) -> ServingCampaign:
    machines, bad_core_id = build_serving_fleet(
        onset_days=ONSET_AGE_DAYS, seed=7
    )
    campaign = ServingCampaign(
        machines, CampaignConfig(ticks=TICKS), hardening, seed=3
    )
    victim = next(
        r.core_id for r in campaign.router.replicas
        if r.core_id != bad_core_id
    )
    campaign.chaos = ChaosSchedule.standard(
        bad_core_id, victim, TICKS, onset_age_days=ONSET_AGE_DAYS
    )
    campaign.run()
    return campaign


def describe(campaign: ServingCampaign) -> None:
    card = campaign.scorecard
    print(f"--- {card.name} ---")
    print(f"  arrivals:        {card.total_arrivals}")
    print(f"  ok:              {card.ok}  (corrupt escapes: "
          f"{card.corrupt_escapes}, escape rate {card.escape_rate:.2%})")
    print(f"  corrupt caught:  {card.corrupt_caught}")
    print(f"  availability:    {card.availability:.2%}")
    print(f"  p50/p99 latency: {card.p50_latency_ms:.1f} / "
          f"{card.p99_latency_ms:.1f} ms")
    print(f"  goodput/tick:    {card.goodput_per_tick:.2f}")
    print(f"  retries/hedges:  {card.retries} / {card.hedges}")
    print(f"  shed:            {card.shed}")
    print(f"  breaker trips:   {card.breaker_trips}")
    for core_id, tick in sorted(card.quarantine_tick.items()):
        print(f"  quarantined:     {core_id} at tick {tick}")
    trips = [e for e in campaign.events
             if e.kind is EventKind.BREAKER_TRIP]
    for event in trips[:3]:
        print(f"  event: breaker_trip core={event.core_id} "
              f"({event.detail})")


def main() -> None:
    print(__doc__)
    naive = run_campaign(HardeningConfig.unhardened())
    hardened = run_campaign(HardeningConfig.hardened())
    describe(naive)
    describe(hardened)
    reduction = (
        float("inf") if hardened.scorecard.escape_rate == 0
        else naive.scorecard.escape_rate / hardened.scorecard.escape_rate
    )
    print(f"\nescape-rate reduction from hardening: "
          f"{'inf' if reduction == float('inf') else f'{reduction:.0f}x'}")


if __name__ == "__main__":
    main()
