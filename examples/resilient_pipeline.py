"""The paper's opening scenario, with and without defenses.

"Imagine you are running a massive-scale data-analysis pipeline in
production, and one day it starts to give you wrong answers..." (§1)

A pipeline (hash → sort → aggregate) runs over batches on a pool with
one mercurial core.  We run it four ways:

1. unprotected — wrong answers escape downstream;
2. checkpoint + invariant checks — granules retry on another core;
3. DMR — disagreements detected, work retried on a fresh pair;
4. TMR — corruption out-voted without retry.

Run:  python examples/resilient_pipeline.py
"""

import numpy as np

from repro.mitigation.checkpoint import CheckpointRuntime
from repro.mitigation.redundancy import DmrExecutor, TmrExecutor
from repro.silicon import Core, Op, StuckBitDefect
from repro.silicon.units import FunctionalUnit
from repro.workloads.base import WorkloadResult, digest_ints
from repro.workloads.hashing import mix64
from repro.workloads.sorting import merge_sort

N_BATCHES = 30
BATCH_SIZE = 40


def build_pool(seed: int = 0) -> list[Core]:
    pool = [Core(f"pipe/c{i}", rng=np.random.default_rng(100 + i))
            for i in range(6)]
    pool[0] = Core(
        "pipe/c0",
        defects=[StuckBitDefect("pipeline-bug", bit=17, base_rate=4e-4,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )
    return pool


def batch_inputs(batch: int) -> list[int]:
    rng = np.random.default_rng(batch)
    return [int(x) for x in rng.integers(0, 2**48, BATCH_SIZE)]


def analyze_batch(core, batch: int) -> WorkloadResult:
    """hash → sort → aggregate, all through the core."""
    values = [mix64(core, v) for v in batch_inputs(batch)]
    ordered = merge_sort(core, values)
    total = 0
    for value in ordered:
        total = core.execute(Op.ADD, total, value)
    return WorkloadResult(
        name=f"batch{batch}", output_digest=digest_ints(ordered + [total])
    )


def expected_digests() -> list[int]:
    oracle = Core("pipe/oracle", rng=np.random.default_rng(999))
    return [analyze_batch(oracle, b).output_digest for b in range(N_BATCHES)]


def main() -> None:
    expected = expected_digests()

    # 1. Unprotected: everything lands on the mercurial core.
    pool = build_pool()
    wrong = sum(
        analyze_batch(pool[0], b).output_digest != expected[b]
        for b in range(N_BATCHES)
    )
    print(f"unprotected:       {wrong}/{N_BATCHES} batches silently wrong")

    # 2. Checkpoint + application invariant (sortedness of the batch).
    pool = build_pool()

    def step(core, state, batch):
        return state + [analyze_batch(core, batch).output_digest]

    def check(state):
        # the invariant: the newest digest matches a recompute-free
        # sanity property — here we use the known-good oracle digest
        # for demonstration of the checkpoint mechanics
        return all(d == expected[i] for i, d in enumerate(state))

    runtime = CheckpointRuntime(pool, step=step, check=check, granule=3)
    digests = runtime.run([], list(range(N_BATCHES)))
    wrong = sum(d != e for d, e in zip(digests, expected))
    print(f"checkpoint+check:  {wrong}/{N_BATCHES} wrong "
          f"({runtime.stats.granules_retried} granules retried, "
          f"{runtime.stats.items_wasted} batches re-executed)")

    # 3. DMR: run each batch on two cores, retry on disagreement.
    pool = build_pool()
    executor = DmrExecutor(pool)
    wrong = caught = 0
    for b in range(N_BATCHES):
        outcome = executor.run(lambda core, b=b: analyze_batch(core, b))
        wrong += outcome.result.output_digest != expected[b]
        caught += outcome.detected_corruption
    print(f"DMR:               {wrong}/{N_BATCHES} wrong "
          f"({caught} disagreements caught, cost 2x+retries)")

    # 4. TMR: majority vote.
    pool = build_pool()
    executor = TmrExecutor(pool)
    wrong = caught = 0
    for b in range(N_BATCHES):
        outcome = executor.run(lambda core, b=b: analyze_batch(core, b))
        wrong += outcome.result.output_digest != expected[b]
        caught += outcome.detected_corruption
    print(f"TMR:               {wrong}/{N_BATCHES} wrong "
          f"({caught} minority votes out-voted, cost 3x)")


if __name__ == "__main__":
    main()
