"""The self-inverting AES mercurial core, end to end (§2's anecdote).

"A deterministic AES mis-computation, which was 'self-inverting':
encrypting and decrypting on the same core yielded the identity
function, but decryption elsewhere yielded gibberish."

Run:  python examples/aes_case_study.py
"""

import numpy as np

from repro.detection.corpus import TestCorpus
from repro.mitigation.selfcheck import CheckedCipher, SelfCheckError
from repro.silicon import Core, named_case
from repro.workloads.crypto import decrypt_ecb, encrypt_ecb

KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
MESSAGE = b"wire this ciphertext to the storage layer, please" * 2


def main() -> None:
    defective = Core(
        "aes/mercurial", defects=named_case("self_inverting_aes"),
        rng=np.random.default_rng(0),
    )
    healthy = Core("aes/healthy", rng=np.random.default_rng(1))

    ct_bad = encrypt_ecb(defective, MESSAGE, KEY)
    ct_good = encrypt_ecb(healthy, MESSAGE, KEY)
    print(f"ciphertext differs from a healthy core's: {ct_bad != ct_good}")

    roundtrip = decrypt_ecb(defective, ct_bad, KEY)
    print(f"same-core decrypt(encrypt(m)) == m:       {roundtrip == MESSAGE}")

    try:
        elsewhere = decrypt_ecb(healthy, ct_bad, KEY)
        print(f"decrypt elsewhere == m:                   {elsewhere == MESSAGE}")
    except ValueError as error:
        print(f"decrypt elsewhere: CRASH ({error}) — gibberish confirmed")

    print("\nWhy this is nasty: the obvious self-check (round-trip on the")
    print("same core) PASSES.  Data encrypted by this core is unreadable")
    print("by every other machine in the fleet — 'a corrupted encryption")
    print("key can render large amounts of data permanently inaccessible'.")

    # Defense 1: cross-core verification in the self-checking library.
    cipher = CheckedCipher(defective, verify_core=healthy)
    try:
        cipher.encrypt(MESSAGE, KEY)
        print("\ncross-core CheckedCipher: MISSED (unexpected)")
    except SelfCheckError as error:
        print(f"\ncross-core CheckedCipher: caught it ({error})")

    # Defense 2: the screening corpus walks every S-box entry.
    corpus = TestCorpus.standard(seeds=(1,))
    result = corpus.screen(defective)
    print(f"screening corpus: confessed={result.confessed} "
          f"via {[t for t in result.failed_tests if 'crypto' in t or 'aes' in t]}")


if __name__ == "__main__":
    main()
