"""Single-fault injection susceptibility study (§9 / ref [11]).

"We could develop fault injectors for testing software resilience ...
fault injection, a technique that does not require access to a large
fleet."  This example measures how three versions of the same workload
respond when exactly one dynamic operation result is corrupted —
the methodology of the sorting/soft-error studies the paper cites.

Run:  python examples/fault_injection_study.py
"""

import numpy as np

from repro.silicon import Core, InjectionCampaign
from repro.silicon.units import Op
from repro.workloads.base import WorkloadResult, digest_ints
from repro.workloads.hashing import fnv1a
from repro.workloads.sorting import is_sorted_on, merge_sort

VALUES = [int(x) for x in np.random.default_rng(11).integers(0, 2**40, 150)]
PAYLOAD = bytes(np.random.default_rng(12).integers(0, 256, 300, dtype=np.uint8))


def unchecked_sort(core) -> WorkloadResult:
    output = merge_sort(core, VALUES)
    return WorkloadResult(name="sort", output_digest=digest_ints(output))


def checked_sort(core) -> WorkloadResult:
    output = merge_sort(core, VALUES)
    return WorkloadResult(
        name="sort+check",
        output_digest=digest_ints(output),
        app_detected=not is_sorted_on(core, output),
    )


def double_hashed(core) -> WorkloadResult:
    first = fnv1a(core, PAYLOAD)
    second = fnv1a(core, PAYLOAD)
    return WorkloadResult(
        name="hash-twice",
        output_digest=digest_ints([first]),
        app_detected=first != second,
    )


def main() -> None:
    rng = np.random.default_rng(0)
    for label, work in (
        ("unchecked merge sort", unchecked_sort),
        ("self-checked merge sort", checked_sort),
        ("compute-twice FNV hash", double_hashed),
    ):
        campaign = InjectionCampaign(work)
        report = campaign.run(n_sites=150, rng=rng)
        print(f"== {label} ==")
        print(report.render())
        print()

    # Zoom in: which op classes are most SDC-prone in the unchecked sort?
    campaign = InjectionCampaign(unchecked_sort)
    compare_only = campaign.run(
        n_sites=80, rng=np.random.default_rng(1),
        ops=frozenset({Op.BLT}),
    )
    print("== unchecked sort, faults restricted to comparisons ==")
    print(compare_only.render())
    print()
    print("Takeaway: a cheap application-level check converts nearly all")
    print("silent corruption into detected corruption — §7's end-to-end")
    print("argument, measured one injected fault at a time.")


if __name__ == "__main__":
    main()
