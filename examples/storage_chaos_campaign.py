"""A replicated KV store surviving a mercurial core, under chaos.

PR 1 hardened the serving path; this example takes chaos to the
*durable* path, where the paper's worst incidents live — index
corruption visible through one core, and §5.2's encryption on a
mercurial core that made data permanently unrecoverable.

The same chaos script runs twice.  Mid-campaign a late-onset defect
(stuck load/store bit + self-inverting S-box swap) activates on one
replica's core; that replica then crashes with a torn WAL tail, a
healthy replica crashes and recovers, a machine-check burst lands on
the innocent one, and a write burst piles on.  The unprotected store
(single ack, read-one, trust-the-core encryption) serves corrupt bytes
and permanently loses keys.  The protected store — CRC-framed WAL,
quorum writes, voted reads with read-repair, background scrubbing,
Merkle anti-entropy, verify-after-encrypt on a second core — loses
nothing, and its integrity signals (WAL_CORRUPTION, QUORUM_MISMATCH,
SCRUB_MISMATCH, ENCRYPT_VERIFY_FAIL) drive the quarantine loop to pull
the defective core.

Run:  python examples/storage_chaos_campaign.py
"""

from repro.chaos import ChaosSchedule
from repro.core.events import EventKind
from repro.storage import (
    StorageCampaign,
    StorageCampaignConfig,
    StorageProtections,
    build_storage_fleet,
)
from repro.storage.campaign import STORAGE_EVENT_KINDS

TICKS = 600
ONSET_AGE_DAYS = 400.0


def run_campaign(protections: StorageProtections) -> StorageCampaign:
    machines, bad_core_id = build_storage_fleet(
        onset_days=ONSET_AGE_DAYS, seed=7
    )
    campaign = StorageCampaign(
        machines, protections, StorageCampaignConfig(ticks=TICKS), seed=3
    )
    victim = next(
        replica.core_id for replica in campaign.store.replicas
        if replica.core_id != bad_core_id
    )
    campaign.chaos = ChaosSchedule.storage_standard(
        bad_core_id, victim, TICKS, onset_age_days=ONSET_AGE_DAYS
    )
    campaign.run()
    return campaign


def describe(campaign: StorageCampaign) -> None:
    card = campaign.scorecard
    print(f"--- {card.name} ---")
    print(f"  keys written:     {card.keys_written} "
          f"({card.write_failures} write failures)")
    print(f"  reads ok:         {card.reads_ok}  (durable escapes: "
          f"{card.durable_escapes}, escape rate {card.escape_rate:.2%})")
    print(f"  unrecoverable:    {card.unrecoverable_keys} keys "
          f"({card.unrecoverable_loss_rate:.2%})")
    print(f"  availability:     {card.read_availability:.2%}")
    print(f"  write amp:        {card.write_amplification:.2f}x")
    print(f"  corrupt caught:   {card.corrupt_reads_caught} at read, "
          f"{card.scrub_mismatches} by scrub")
    print(f"  repairs:          {card.repairs_total} "
          f"(backfills {card.backfills}, mean latency "
          f"{card.mean_repair_latency_ms:.0f} ms)")
    print(f"  WAL:              {card.wal_corrupt_records} corrupt, "
          f"{card.wal_torn_tails} torn tails, "
          f"{card.wal_records_truncated} truncated at replay")
    for core_id, tick in sorted(card.quarantine_tick.items()):
        print(f"  quarantined:      {core_id} at tick {tick}")
    storage_events = [
        e for e in campaign.events if e.kind in STORAGE_EVENT_KINDS
    ]
    for event in storage_events[:3]:
        print(f"  event: {event.kind.name.lower()} core={event.core_id} "
              f"({event.detail})")


def main() -> None:
    print(__doc__)
    naive = run_campaign(StorageProtections.unprotected())
    protected = run_campaign(StorageProtections.protected())
    describe(naive)
    describe(protected)
    reduction = (
        float("inf") if protected.scorecard.escape_rate == 0
        else naive.scorecard.escape_rate / protected.scorecard.escape_rate
    )
    print(f"\nescape-rate reduction from the storage stack: "
          f"{'inf' if reduction == float('inf') else f'{reduction:.0f}x'}")
    print(f"unrecoverable keys: {naive.scorecard.unrecoverable_keys} -> "
          f"{protected.scorecard.unrecoverable_keys}")
    verify_fails = sum(
        1 for e in protected.events
        if e.kind is EventKind.ENCRYPT_VERIFY_FAIL
    )
    print(f"verify-after-encrypt caught {verify_fails} mis-encryptions "
          f"before they were durably acked")


if __name__ == "__main__":
    main()
