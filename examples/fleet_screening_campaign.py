"""A fleet detection campaign, Figure-1 style.

Builds a few thousand machines (with the paper's incidence band
densified for a quick demo), runs months of simulated fleet time, and
prints: Figure 1's two normalized series, the quarantine scoreboard,
and the triage funnel.

Run:  python examples/fleet_screening_campaign.py
"""

import dataclasses

from repro.analysis.figures import render_fig1
from repro.analysis.stats import trend_slope
from repro.core.events import Reporter
from repro.core.metrics import confusion
from repro.fleet import DEFAULT_PRODUCTS, FleetBuilder, FleetSimulator, SimulatorConfig
from repro.fleet.population import ground_truth_map

N_MACHINES = 3000
HORIZON_DAYS = 360.0


def main() -> None:
    products = tuple(
        dataclasses.replace(p, core_prevalence=p.core_prevalence * 20)
        for p in DEFAULT_PRODUCTS
    )
    builder = FleetBuilder(
        products=products, seed=42,
        deployment_window=(-800.0, HORIZON_DAYS),
        technology_refresh=True,
    )
    machines, truth = builder.build(N_MACHINES)
    n_cores = sum(len(m.cores) for m in machines)
    print(f"fleet: {N_MACHINES} machines, {n_cores} cores, "
          f"{truth.n_mercurial} mercurial "
          f"({1000 * truth.n_mercurial / N_MACHINES:.2f}/1000 machines)")

    simulator = FleetSimulator(
        machines, truth,
        SimulatorConfig(horizon_days=HORIZON_DAYS, warmup_days=120.0),
        seed=7,
    )
    result = simulator.run()

    auto = result.cee_report_series(Reporter.AUTOMATED, bucket_days=60.0)
    human = result.cee_report_series(Reporter.HUMAN, bucket_days=60.0)
    print()
    print(render_fig1(auto, human))
    print(f"\nautomated-series trend: {trend_slope(auto):+.2e}/day "
          "(paper: 'gradually increasing')")

    detection = confusion(ground_truth_map(machines), result.flagged())
    print(f"\nquarantine scoreboard after {HORIZON_DAYS:.0f} days:")
    print(f"  quarantined cores: {len(result.quarantined_cores)}")
    print(f"  precision: {detection.precision:.2f}  "
          f"recall: {detection.recall:.2f}")
    if result.detection_latency_days:
        latencies = sorted(result.detection_latency_days.values())
        print(f"  detection latency (days since onset): "
              f"median={latencies[len(latencies) // 2]:.0f}")

    fractions = result.triage.outcome_fractions()
    print(f"\nhuman triage funnel ({len(result.triage.investigations)} "
          "investigations):")
    for outcome, fraction in fractions.items():
        print(f"  {outcome.value:18s} {fraction:.2f}")
    print(f"\nscreening compute spent: {result.screening_ops_spent:.3g} ops")


if __name__ == "__main__":
    main()
