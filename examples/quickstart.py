"""Quickstart: build a mercurial core, watch it corrupt, catch it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.detection import OfflineScreener, TestCorpus
from repro.silicon import Core, Op, named_case
from repro.workloads import compression_workload, run_with_oracle
from repro.workloads.generator import STANDARD_MIX


def main() -> None:
    # 1. A healthy core and a mercurial one (a §2 case study: repeated
    #    bit-flips at one particular bit position in the copy path).
    healthy = Core("demo/healthy", rng=np.random.default_rng(0))
    mercurial = Core(
        "demo/mercurial",
        defects=named_case("string_bit_flipper"),
        rng=np.random.default_rng(1),
    )

    print("== primitive operations ==")
    print(f"healthy   2+3        = {healthy.execute(Op.ADD, 2, 3)}")
    print(f"mercurial 2+3        = {mercurial.execute(Op.ADD, 2, 3)} "
          "(the defect is in LOAD/STORE, not the ALU)")

    # 2. Real software computes *through* a core.  Run the standard
    #    workload mix on both and compare against the oracle.
    print("\n== workload mix on the mercurial core ==")
    for spec in STANDARD_MIX:
        work = spec.build(seed=42)
        comparison = run_with_oracle(work, mercurial, healthy)
        verdict = "clean"
        if comparison.suspect.crashed:
            verdict = "CRASHED"
        elif comparison.suspect.app_detected:
            verdict = "caught by app self-check"
        elif comparison.outputs_differ:
            verdict = "SILENTLY WRONG"
        print(f"  {spec.name:12s} {verdict}")

    # 3. A compression unit of work, in detail.
    result = compression_workload(mercurial, b"an incompressible payload " * 30)
    print(f"\ncompression detail: detected={result.app_detected} "
          f"crashed={result.crashed} {result.detail}")

    # 4. Screening: the corpus extracts a confession.
    print("\n== screening ==")
    corpus = TestCorpus.standard()
    screen = corpus.screen(mercurial, repetitions=2)
    print(f"corpus verdict: confessed={screen.confessed}")
    print(f"failing tests:  {screen.failed_tests[:4]}")

    offline = OfflineScreener()
    sweep = offline.screen_core(mercurial)
    print(f"offline sweep:  confessed={sweep.confessed} "
          f"({sweep.tests_run} tests across the f/V/T envelope, "
          f"{sweep.drain_cost_coreseconds:.0f} core-seconds drained)")

    # 5. Ground truth (the simulator knows; the detectors never peek).
    print(f"\nground truth: {mercurial.corruptions_induced} corruptions "
          f"induced over {mercurial.ops_executed} operations")


if __name__ == "__main__":
    main()
