"""Tests for the ``repro.lint`` invariant linter.

Covers, per the PR-5 acceptance criteria:

- positive *and* negative fixture snippets for every rule id;
- ``# repro: noqa-RULE`` suppression semantics;
- baseline round-trip (save -> load -> split) and the ratchet;
- the ``--json`` output schema;
- the meta-gate: ``repro lint src tests benchmarks scripts`` is clean
  against the committed baseline (the same check CI runs).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    Finding,
    LintConfig,
    RULES,
    Severity,
    lint_source,
    run_lint,
)
from repro.lint import baseline as baseline_mod
from repro.lint.engine import PARSE_RULE_ID

REPO = Path(__file__).resolve().parent.parent


def rule_ids(findings: list[Finding]) -> list[str]:
    return [finding.rule_id for finding in findings]


def lint_snippet(source: str, rel_path: str = "src/repro/snippet.py",
                 **config_kwargs) -> list[Finding]:
    config = LintConfig(**config_kwargs) if config_kwargs else None
    return lint_source(
        textwrap.dedent(source), rel_path=rel_path, config=config
    )


class TestDet001UnseededRandom:
    def test_module_level_random_call_flagged(self):
        findings = lint_snippet("""
            import random
            x = random.randint(0, 10)
        """)
        assert rule_ids(findings) == ["DET001"]
        assert "hidden" in findings[0].message

    def test_from_import_of_module_fn_flagged(self):
        findings = lint_snippet("from random import shuffle\n")
        assert rule_ids(findings) == ["DET001"]

    def test_legacy_numpy_random_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert rule_ids(findings) == ["DET001"]

    def test_aliased_import_flagged(self):
        findings = lint_snippet("""
            import random as rnd
            rnd.seed(0)
        """)
        assert rule_ids(findings) == ["DET001"]

    def test_seeded_generator_ok(self):
        findings = lint_snippet("""
            import numpy as np
            rng = np.random.default_rng(7)
            seq = np.random.SeedSequence(7)
            x = rng.integers(0, 10)
        """)
        assert findings == []

    def test_instance_random_ok(self):
        # random.Random(seed) is explicit-state, not the module RNG
        findings = lint_snippet("""
            import random
            r = random.Random(7)
            x = r.randint(0, 10)
        """)
        assert findings == []


class TestDet002WallClock:
    def test_time_time_flagged(self):
        findings = lint_snippet("""
            import time
            t = time.time()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_from_time_import_call_flagged(self):
        findings = lint_snippet("""
            from time import perf_counter
            t = perf_counter()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_datetime_now_flagged(self):
        findings = lint_snippet("""
            import datetime
            t = datetime.datetime.now()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_bench_module_allowed(self):
        findings = lint_snippet(
            "import time\nt = time.perf_counter()\n",
            rel_path="src/repro/engine/bench.py",
        )
        assert findings == []

    def test_benchmarks_dir_allowed(self):
        findings = lint_snippet(
            "import time\nt = time.time()\n",
            rel_path="benchmarks/bench_x.py",
        )
        assert findings == []

    def test_simulated_clock_ok(self):
        findings = lint_snippet("""
            def now_ms(tick, tick_ms):
                return tick * tick_ms
        """)
        assert findings == []


class TestDet003UnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        findings = lint_snippet("""
            def f(out):
                for x in {3, 1, 2}:
                    out.append(x)
        """)
        assert rule_ids(findings) == ["DET003"]
        assert findings[0].severity is Severity.WARNING

    def test_list_of_set_call_flagged(self):
        findings = lint_snippet("xs = list(set([3, 1, 2]))\n")
        assert rule_ids(findings) == ["DET003"]

    def test_join_of_set_comp_flagged(self):
        findings = lint_snippet(
            "text = ','.join({str(x) for x in range(3)})\n"
        )
        assert rule_ids(findings) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        findings = lint_snippet("ys = [x for x in set((1, 2))]\n")
        assert rule_ids(findings) == ["DET003"]

    def test_sorted_set_ok(self):
        findings = lint_snippet("""
            def f(out):
                for x in sorted({3, 1, 2}):
                    out.append(x)
                return sorted(set((2, 1)))
        """)
        assert findings == []

    def test_order_insensitive_sinks_ok(self):
        findings = lint_snippet("""
            n = len(set((1, 2)))
            total = sum({1, 2})
            hit = 3 in {1, 2, 3}
        """)
        assert findings == []


class TestSafe001WeightTable:
    def _tree(self, tmp_path: Path, kinds: list[str], weighted: list[str]):
        events = tmp_path / "events.py"
        weights = tmp_path / "weights.py"
        members = "\n".join(
            f'    {kind} = "{kind.lower()}"' for kind in kinds
        )
        events.write_text(
            "import enum\n\nclass EventKind(enum.Enum):\n" + members + "\n"
        )
        entries = "\n".join(
            f"    EventKind.{kind}: SuspicionWeight(1.0, 'r'),"
            for kind in weighted
        )
        weights.write_text(
            "SUSPICION_WEIGHTS = {\n" + entries + "\n}\n"
        )
        return LintConfig(
            events_path="events.py", weights_path="weights.py",
        )

    def test_missing_weight_flagged(self, tmp_path):
        config = self._tree(tmp_path, ["CRASH", "NEW_KIND"], ["CRASH"])
        result = run_lint([], root=tmp_path, config=config)
        assert rule_ids(result.new) == ["SAFE001"]
        assert "NEW_KIND" in result.new[0].message
        assert result.new[0].path == "events.py"

    def test_stale_weight_flagged(self, tmp_path):
        config = self._tree(tmp_path, ["CRASH"], ["CRASH", "GONE"])
        result = run_lint([], root=tmp_path, config=config)
        assert rule_ids(result.new) == ["SAFE001"]
        assert "stale" in result.new[0].message

    def test_complete_table_clean(self, tmp_path):
        config = self._tree(tmp_path, ["CRASH", "MCE"], ["CRASH", "MCE"])
        result = run_lint([], root=tmp_path, config=config)
        assert result.new == []

    def test_real_repo_table_is_complete(self):
        result = run_lint(
            [], root=REPO, config=LintConfig(select=frozenset({"SAFE001"}))
        )
        assert result.new == []


class TestSafe002DeclaredNames:
    @pytest.fixture()
    def config(self, tmp_path) -> tuple[LintConfig, Path]:
        (tmp_path / "names.py").write_text(
            'GOOD_TOTAL = "good_total"\nSPAN_OP = "engine.op"\n'
        )
        return LintConfig(obs_names_path="names.py"), tmp_path

    def _lint(self, source: str, config: tuple[LintConfig, Path]):
        cfg, root = config
        return lint_source(
            textwrap.dedent(source),
            rel_path="src/repro/mod.py", config=cfg, root=root,
        )

    def test_undeclared_metric_flagged(self, config):
        findings = self._lint("""
            from repro import obs
            obs.metrics.counter("typo_total").inc()
        """, config)
        assert rule_ids(findings) == ["SAFE002"]
        assert "typo_total" in findings[0].message

    def test_undeclared_span_flagged(self, config):
        findings = self._lint("""
            from repro import obs
            with obs.tracer.span("engine.oops"):
                pass
        """, config)
        assert rule_ids(findings) == ["SAFE002"]

    def test_dynamic_name_flagged(self, config):
        findings = self._lint("""
            from repro import obs
            def f(part):
                obs.metrics.counter(f"{part}_total").inc()
        """, config)
        assert rule_ids(findings) == ["SAFE002"]
        assert "dynamically" in findings[0].message

    def test_declared_names_clean(self, config):
        findings = self._lint("""
            from repro import obs
            obs.metrics.counter("good_total").inc()
            with obs.tracer.span("engine.op"):
                pass
        """, config)
        assert findings == []

    def test_tests_are_out_of_scope(self, config):
        cfg, root = config
        findings = lint_source(
            'from repro import obs\nobs.metrics.counter("scratch").inc()\n',
            rel_path="tests/test_mod.py", config=cfg, root=root,
        )
        assert findings == []

    def test_every_emitted_name_is_declared_in_repo(self):
        result = run_lint(
            ["src"], root=REPO,
            config=LintConfig(select=frozenset({"SAFE002"})),
        )
        assert result.new == []


class TestPerf001Slots:
    CONFIG = dict(slots_modules=("src/repro/hot.py",))

    def test_slotless_dataclass_in_hot_module_flagged(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass
            class Record:
                x: int
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert rule_ids(findings) == ["PERF001"]

    def test_slots_kwarg_clean(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass(frozen=True, slots=True)
            class Record:
                x: int
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_explicit_slots_clean(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass
            class Record:
                __slots__ = ("x",)
                x: int
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_cold_module_not_required(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass
            class Report:
                x: int
        """, rel_path="src/repro/cold.py", **self.CONFIG)
        assert findings == []

    def test_hot_table_modules_exist(self):
        for rel in LintConfig().slots_modules:
            assert (REPO / rel).is_file(), f"stale slots table entry {rel}"


class TestPerf002PerCoreLoops:
    CONFIG = dict(percore_loop_modules=("src/repro/hot.py",))

    def test_for_loop_over_cores_flagged(self):
        findings = lint_snippet("""
            def scan(machines):
                for machine in machines:
                    for core in machine.cores:
                        core.touch()
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert rule_ids(findings) == ["PERF002"]

    def test_comprehension_over_cores_flagged(self):
        findings = lint_snippet("""
            def scan(machines):
                return [c for m in machines for c in m.cores]
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert rule_ids(findings) == ["PERF002"]

    def test_cores_outside_iterable_clean(self):
        # .cores in the element/body is counting, not per-core looping.
        findings = lint_snippet("""
            def total(machines):
                return sum(len(m.cores) for m in machines)
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = lint_snippet("""
            def scan(machines):
                return [c for m in machines for c in m.cores]  # repro: noqa-PERF002 -- compat path
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_cold_module_not_checked(self):
        findings = lint_snippet("""
            def scan(machines):
                for machine in machines:
                    for core in machine.cores:
                        core.touch()
        """, rel_path="src/repro/cold.py", **self.CONFIG)
        assert findings == []

    def test_percore_table_modules_exist(self):
        for rel in LintConfig().percore_loop_modules:
            assert (REPO / rel).is_file(), f"stale per-core table entry {rel}"

    def test_repo_hot_paths_clean(self):
        result = run_lint(
            ["src"], root=REPO,
            config=LintConfig(select=frozenset({"PERF002"})),
        )
        assert result.new == []


class TestApi001MutableDefaults:
    def test_list_default_flagged(self):
        findings = lint_snippet("def f(xs=[]):\n    return xs\n")
        assert rule_ids(findings) == ["API001"]

    def test_dict_call_default_flagged(self):
        findings = lint_snippet("def f(m=dict()):\n    return m\n")
        assert rule_ids(findings) == ["API001"]

    def test_kwonly_and_lambda_defaults_flagged(self):
        findings = lint_snippet("""
            def f(*, acc={}):
                return acc
            g = lambda xs=[]: xs
        """)
        assert rule_ids(findings) == ["API001", "API001"]

    def test_none_default_ok(self):
        findings = lint_snippet("""
            def f(xs=None, n=0, name="x", pair=(1, 2)):
                return xs or []
        """)
        assert findings == []


class TestSuppressions:
    SOURCE = """
        import time
        t = time.time()  # repro: noqa-DET002 -- operator display only
    """

    def test_noqa_rule_suppresses(self):
        assert lint_snippet(self.SOURCE) == []

    def test_noqa_other_rule_does_not_suppress(self):
        source = "import time\nt = time.time()  # repro: noqa-DET001\n"
        assert rule_ids(lint_snippet(source)) == ["DET002"]

    def test_bare_noqa_suppresses_everything(self):
        source = "import time\nt = time.time()  # repro: noqa\n"
        assert lint_snippet(source) == []

    def test_noqa_on_other_line_does_not_leak(self):
        source = (
            "import time  # repro: noqa-DET002\n"
            "t = time.time()\n"
        )
        assert rule_ids(lint_snippet(source)) == ["DET002"]

    def test_suppressed_count_reported(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\nt = time.time()  # repro: noqa-DET002\n"
        )
        result = run_lint(["mod.py"], root=tmp_path)
        assert result.suppressed == 1
        assert result.new == []


class TestBaseline:
    def _findings(self, tmp_path: Path):
        (tmp_path / "mod.py").write_text(
            "import time\na = time.time()\nb = time.time()\n"
        )
        return run_lint(["mod.py"], root=tmp_path).new

    def test_round_trip(self, tmp_path):
        findings = self._findings(tmp_path)
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, findings)
        loaded = baseline_mod.load(path)
        assert loaded == baseline_mod.count_fingerprints(findings)
        new, grandfathered = baseline_mod.split_new(findings, loaded)
        assert new == [] and len(grandfathered) == 2

    def test_ratchet_catches_third_occurrence(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = baseline_mod.count_fingerprints(findings)
        (tmp_path / "mod.py").write_text(
            "import time\na = time.time()\nb = time.time()\n"
            "c = time.time()\n"
        )
        result = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert len(result.grandfathered) == 2
        assert len(result.new) == 1
        assert result.exit_status == 1

    def test_fixed_findings_shrink_quietly(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = baseline_mod.count_fingerprints(findings)
        (tmp_path / "mod.py").write_text("import time\n")
        result = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert result.new == [] and result.exit_status == 0

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99}')
        with pytest.raises(baseline_mod.BaselineError):
            baseline_mod.load(path)


class TestCliAndJson:
    def _write_bad(self, tmp_path: Path) -> Path:
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        return bad

    def test_gate_fails_on_seeded_violation(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        status = repro_main(
            ["lint", str(bad), "--root", str(tmp_path), "--no-baseline"]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "hint:" in out

    def test_json_schema(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        status = repro_main(
            ["lint", "bad.py", "--root", str(tmp_path), "--json",
             "--no-baseline"]
        )
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["files_scanned"] == 1
        assert payload["new_count"] == 1
        assert payload["baseline_used"] is False
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "col", "message",
            "hint", "baselined",
        }
        assert finding["rule"] == "DET002"
        assert finding["path"] == "bad.py"
        assert finding["line"] == 2
        assert finding["baselined"] is False

    def test_write_then_gate_green(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        assert repro_main(
            ["lint", "bad.py", "--root", str(tmp_path), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert repro_main(
            ["lint", "bad.py", "--root", str(tmp_path)]
        ) == 0
        payload = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert payload["version"] == 1 and len(payload["findings"]) == 1

    def test_unknown_path_is_usage_error(self, tmp_path):
        assert repro_main(
            ["lint", "nope.py", "--root", str(tmp_path)]
        ) == 2

    def test_select_unknown_rule_exits(self, tmp_path):
        self._write_bad(tmp_path)
        with pytest.raises(SystemExit):
            repro_main(
                ["lint", "bad.py", "--root", str(tmp_path),
                 "--select", "NOPE999"]
            )

    def test_list_rules_covers_rule_pack(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = run_lint(["broken.py"], root=tmp_path)
        assert rule_ids(result.new) == [PARSE_RULE_ID]


class TestMetaGate:
    def test_rule_pack_has_required_families(self):
        families = {rule_id[:-3] for rule_id in RULES}
        assert {"DET", "SAFE", "PERF", "API"} <= families
        assert len(RULES) >= 7

    def test_repo_is_clean_against_committed_baseline(self):
        baseline_path = REPO / "lint-baseline.json"
        assert baseline_path.is_file(), "lint-baseline.json must be committed"
        baseline = baseline_mod.load(baseline_path)
        result = run_lint(
            ["src", "tests", "benchmarks", "scripts"],
            root=REPO, baseline=baseline,
        )
        rendered = "\n".join(f.render() for f in result.new)
        assert result.new == [], f"new lint findings:\n{rendered}"
        assert result.files_scanned > 150
