"""Tests for the ``repro.lint`` invariant linter.

Covers, per the PR-5 acceptance criteria:

- positive *and* negative fixture snippets for every rule id;
- ``# repro: noqa-RULE`` suppression semantics;
- baseline round-trip (save -> load -> split) and the ratchet;
- the ``--json`` output schema;
- the meta-gate: ``repro lint src tests benchmarks scripts`` is clean
  against the committed baseline (the same check CI runs).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as repro_main
from repro.lint import (
    Finding,
    LintConfig,
    RULES,
    Severity,
    lint_source,
    run_lint,
)
from repro.lint import baseline as baseline_mod
from repro.lint.engine import PARSE_RULE_ID

REPO = Path(__file__).resolve().parent.parent


def rule_ids(findings: list[Finding]) -> list[str]:
    return [finding.rule_id for finding in findings]


def lint_snippet(source: str, rel_path: str = "src/repro/snippet.py",
                 **config_kwargs) -> list[Finding]:
    config = LintConfig(**config_kwargs) if config_kwargs else None
    return lint_source(
        textwrap.dedent(source), rel_path=rel_path, config=config
    )


class TestDet001UnseededRandom:
    def test_module_level_random_call_flagged(self):
        findings = lint_snippet("""
            import random
            x = random.randint(0, 10)
        """)
        assert rule_ids(findings) == ["DET001"]
        assert "hidden" in findings[0].message

    def test_from_import_of_module_fn_flagged(self):
        findings = lint_snippet("from random import shuffle\n")
        assert rule_ids(findings) == ["DET001"]

    def test_legacy_numpy_random_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            x = np.random.rand(3)
        """)
        assert rule_ids(findings) == ["DET001"]

    def test_aliased_import_flagged(self):
        findings = lint_snippet("""
            import random as rnd
            rnd.seed(0)
        """)
        assert rule_ids(findings) == ["DET001"]

    def test_seeded_generator_ok(self):
        # seed threaded from a parameter: clean for DET001 *and* DET004
        findings = lint_snippet("""
            import numpy as np
            def make(seed):
                rng = np.random.default_rng(seed)
                seq = np.random.SeedSequence(seed)
                return rng.integers(0, 10)
        """)
        assert findings == []

    def test_instance_random_ok(self):
        # random.Random(seed) is explicit-state, not the module RNG
        findings = lint_snippet("""
            import random
            r = random.Random(7)
            x = r.randint(0, 10)
        """)
        assert findings == []


class TestDet002WallClock:
    def test_time_time_flagged(self):
        findings = lint_snippet("""
            import time
            t = time.time()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_from_time_import_call_flagged(self):
        findings = lint_snippet("""
            from time import perf_counter
            t = perf_counter()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_datetime_now_flagged(self):
        findings = lint_snippet("""
            import datetime
            t = datetime.datetime.now()
        """)
        assert rule_ids(findings) == ["DET002"]

    def test_bench_module_allowed(self):
        findings = lint_snippet(
            "import time\nt = time.perf_counter()\n",
            rel_path="src/repro/engine/bench.py",
        )
        assert findings == []

    def test_benchmarks_dir_allowed(self):
        findings = lint_snippet(
            "import time\nt = time.time()\n",
            rel_path="benchmarks/bench_x.py",
        )
        assert findings == []

    def test_simulated_clock_ok(self):
        findings = lint_snippet("""
            def now_ms(tick, tick_ms):
                return tick * tick_ms
        """)
        assert findings == []


class TestDet003UnorderedIteration:
    def test_for_over_set_literal_flagged(self):
        findings = lint_snippet("""
            def f(out):
                for x in {3, 1, 2}:
                    out.append(x)
        """)
        assert rule_ids(findings) == ["DET003"]
        assert findings[0].severity is Severity.WARNING

    def test_list_of_set_call_flagged(self):
        findings = lint_snippet("xs = list(set([3, 1, 2]))\n")
        assert rule_ids(findings) == ["DET003"]

    def test_join_of_set_comp_flagged(self):
        findings = lint_snippet(
            "text = ','.join({str(x) for x in range(3)})\n"
        )
        assert rule_ids(findings) == ["DET003"]

    def test_comprehension_over_set_flagged(self):
        findings = lint_snippet("ys = [x for x in set((1, 2))]\n")
        assert rule_ids(findings) == ["DET003"]

    def test_sorted_set_ok(self):
        findings = lint_snippet("""
            def f(out):
                for x in sorted({3, 1, 2}):
                    out.append(x)
                return sorted(set((2, 1)))
        """)
        assert findings == []

    def test_order_insensitive_sinks_ok(self):
        findings = lint_snippet("""
            n = len(set((1, 2)))
            total = sum({1, 2})
            hit = 3 in {1, 2, 3}
        """)
        assert findings == []


class TestSafe001WeightTable:
    def _tree(self, tmp_path: Path, kinds: list[str], weighted: list[str]):
        events = tmp_path / "events.py"
        weights = tmp_path / "weights.py"
        members = "\n".join(
            f'    {kind} = "{kind.lower()}"' for kind in kinds
        )
        events.write_text(
            "import enum\n\nclass EventKind(enum.Enum):\n" + members + "\n"
        )
        entries = "\n".join(
            f"    EventKind.{kind}: SuspicionWeight(1.0, 'r'),"
            for kind in weighted
        )
        weights.write_text(
            "SUSPICION_WEIGHTS = {\n" + entries + "\n}\n"
        )
        return LintConfig(
            events_path="events.py", weights_path="weights.py",
        )

    def test_missing_weight_flagged(self, tmp_path):
        config = self._tree(tmp_path, ["CRASH", "NEW_KIND"], ["CRASH"])
        result = run_lint([], root=tmp_path, config=config)
        assert rule_ids(result.new) == ["SAFE001"]
        assert "NEW_KIND" in result.new[0].message
        assert result.new[0].path == "events.py"

    def test_stale_weight_flagged(self, tmp_path):
        config = self._tree(tmp_path, ["CRASH"], ["CRASH", "GONE"])
        result = run_lint([], root=tmp_path, config=config)
        assert rule_ids(result.new) == ["SAFE001"]
        assert "stale" in result.new[0].message

    def test_complete_table_clean(self, tmp_path):
        config = self._tree(tmp_path, ["CRASH", "MCE"], ["CRASH", "MCE"])
        result = run_lint([], root=tmp_path, config=config)
        assert result.new == []

    def test_real_repo_table_is_complete(self):
        result = run_lint(
            [], root=REPO, config=LintConfig(select=frozenset({"SAFE001"}))
        )
        assert result.new == []


class TestSafe002DeclaredNames:
    @pytest.fixture()
    def config(self, tmp_path) -> tuple[LintConfig, Path]:
        (tmp_path / "names.py").write_text(
            'GOOD_TOTAL = "good_total"\nSPAN_OP = "engine.op"\n'
        )
        return LintConfig(obs_names_path="names.py"), tmp_path

    def _lint(self, source: str, config: tuple[LintConfig, Path]):
        cfg, root = config
        return lint_source(
            textwrap.dedent(source),
            rel_path="src/repro/mod.py", config=cfg, root=root,
        )

    def test_undeclared_metric_flagged(self, config):
        findings = self._lint("""
            from repro import obs
            obs.metrics.counter("typo_total").inc()
        """, config)
        assert rule_ids(findings) == ["SAFE002"]
        assert "typo_total" in findings[0].message

    def test_undeclared_span_flagged(self, config):
        findings = self._lint("""
            from repro import obs
            with obs.tracer.span("engine.oops"):
                pass
        """, config)
        assert rule_ids(findings) == ["SAFE002"]

    def test_dynamic_name_flagged(self, config):
        findings = self._lint("""
            from repro import obs
            def f(part):
                obs.metrics.counter(f"{part}_total").inc()
        """, config)
        assert rule_ids(findings) == ["SAFE002"]
        assert "dynamically" in findings[0].message

    def test_declared_names_clean(self, config):
        findings = self._lint("""
            from repro import obs
            obs.metrics.counter("good_total").inc()
            with obs.tracer.span("engine.op"):
                pass
        """, config)
        assert findings == []

    def test_tests_are_out_of_scope(self, config):
        cfg, root = config
        findings = lint_source(
            'from repro import obs\nobs.metrics.counter("scratch").inc()\n',
            rel_path="tests/test_mod.py", config=cfg, root=root,
        )
        assert findings == []

    def test_every_emitted_name_is_declared_in_repo(self):
        result = run_lint(
            ["src"], root=REPO,
            config=LintConfig(select=frozenset({"SAFE002"})),
        )
        assert result.new == []


class TestPerf001Slots:
    CONFIG = dict(slots_modules=("src/repro/hot.py",))

    def test_slotless_dataclass_in_hot_module_flagged(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass
            class Record:
                x: int
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert rule_ids(findings) == ["PERF001"]

    def test_slots_kwarg_clean(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass(frozen=True, slots=True)
            class Record:
                x: int
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_explicit_slots_clean(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass
            class Record:
                __slots__ = ("x",)
                x: int
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_cold_module_not_required(self):
        findings = lint_snippet("""
            import dataclasses

            @dataclasses.dataclass
            class Report:
                x: int
        """, rel_path="src/repro/cold.py", **self.CONFIG)
        assert findings == []

    def test_hot_table_modules_exist(self):
        for rel in LintConfig().slots_modules:
            assert (REPO / rel).is_file(), f"stale slots table entry {rel}"


class TestPerf002PerCoreLoops:
    CONFIG = dict(percore_loop_modules=("src/repro/hot.py",))

    def test_for_loop_over_cores_flagged(self):
        findings = lint_snippet("""
            def scan(machines):
                for machine in machines:
                    for core in machine.cores:
                        core.touch()
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert rule_ids(findings) == ["PERF002"]

    def test_comprehension_over_cores_flagged(self):
        findings = lint_snippet("""
            def scan(machines):
                return [c for m in machines for c in m.cores]
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert rule_ids(findings) == ["PERF002"]

    def test_cores_outside_iterable_clean(self):
        # .cores in the element/body is counting, not per-core looping.
        findings = lint_snippet("""
            def total(machines):
                return sum(len(m.cores) for m in machines)
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_noqa_suppresses(self):
        findings = lint_snippet("""
            def scan(machines):
                return [c for m in machines for c in m.cores]  # repro: noqa-PERF002 -- compat path
        """, rel_path="src/repro/hot.py", **self.CONFIG)
        assert findings == []

    def test_cold_module_not_checked(self):
        findings = lint_snippet("""
            def scan(machines):
                for machine in machines:
                    for core in machine.cores:
                        core.touch()
        """, rel_path="src/repro/cold.py", **self.CONFIG)
        assert findings == []

    def test_percore_table_modules_exist(self):
        for rel in LintConfig().percore_loop_modules:
            assert (REPO / rel).is_file(), f"stale per-core table entry {rel}"

    def test_repo_hot_paths_clean(self):
        result = run_lint(
            ["src"], root=REPO,
            config=LintConfig(select=frozenset({"PERF002"})),
        )
        assert result.new == []


class TestApi001MutableDefaults:
    def test_list_default_flagged(self):
        findings = lint_snippet("def f(xs=[]):\n    return xs\n")
        assert rule_ids(findings) == ["API001"]

    def test_dict_call_default_flagged(self):
        findings = lint_snippet("def f(m=dict()):\n    return m\n")
        assert rule_ids(findings) == ["API001"]

    def test_kwonly_and_lambda_defaults_flagged(self):
        findings = lint_snippet("""
            def f(*, acc={}):
                return acc
            g = lambda xs=[]: xs
        """)
        assert rule_ids(findings) == ["API001", "API001"]

    def test_none_default_ok(self):
        findings = lint_snippet("""
            def f(xs=None, n=0, name="x", pair=(1, 2)):
                return xs or []
        """)
        assert findings == []


class TestSuppressions:
    SOURCE = """
        import time
        t = time.time()  # repro: noqa-DET002 -- operator display only
    """

    def test_noqa_rule_suppresses(self):
        assert lint_snippet(self.SOURCE) == []

    def test_noqa_other_rule_does_not_suppress(self):
        source = "import time\nt = time.time()  # repro: noqa-DET001\n"
        assert rule_ids(lint_snippet(source)) == ["DET002"]

    def test_bare_noqa_suppresses_everything(self):
        source = "import time\nt = time.time()  # repro: noqa\n"
        assert lint_snippet(source) == []

    def test_noqa_on_other_line_does_not_leak(self):
        source = (
            "import time  # repro: noqa-DET002\n"
            "t = time.time()\n"
        )
        assert rule_ids(lint_snippet(source)) == ["DET002"]

    def test_suppressed_count_reported(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import time\nt = time.time()  # repro: noqa-DET002\n"
        )
        result = run_lint(["mod.py"], root=tmp_path)
        assert result.suppressed == 1
        assert result.new == []


class TestBaseline:
    def _findings(self, tmp_path: Path):
        (tmp_path / "mod.py").write_text(
            "import time\na = time.time()\nb = time.time()\n"
        )
        return run_lint(["mod.py"], root=tmp_path).new

    def test_round_trip(self, tmp_path):
        findings = self._findings(tmp_path)
        path = tmp_path / "baseline.json"
        baseline_mod.save(path, findings)
        loaded = baseline_mod.load(path)
        assert loaded == baseline_mod.count_fingerprints(findings)
        new, grandfathered = baseline_mod.split_new(findings, loaded)
        assert new == [] and len(grandfathered) == 2

    def test_ratchet_catches_third_occurrence(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = baseline_mod.count_fingerprints(findings)
        (tmp_path / "mod.py").write_text(
            "import time\na = time.time()\nb = time.time()\n"
            "c = time.time()\n"
        )
        result = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert len(result.grandfathered) == 2
        assert len(result.new) == 1
        assert result.exit_status == 1

    def test_fixed_findings_shrink_quietly(self, tmp_path):
        findings = self._findings(tmp_path)
        baseline = baseline_mod.count_fingerprints(findings)
        (tmp_path / "mod.py").write_text("import time\n")
        result = run_lint(["mod.py"], root=tmp_path, baseline=baseline)
        assert result.new == [] and result.exit_status == 0

    def test_malformed_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99}')
        with pytest.raises(baseline_mod.BaselineError):
            baseline_mod.load(path)


class TestCliAndJson:
    def _write_bad(self, tmp_path: Path) -> Path:
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nt = time.time()\n")
        return bad

    def test_gate_fails_on_seeded_violation(self, tmp_path, capsys):
        bad = self._write_bad(tmp_path)
        status = repro_main(
            ["lint", str(bad), "--root", str(tmp_path), "--no-baseline"]
        )
        assert status == 1
        out = capsys.readouterr().out
        assert "DET002" in out and "hint:" in out

    def test_json_schema(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        status = repro_main(
            ["lint", "bad.py", "--root", str(tmp_path), "--json",
             "--no-baseline"]
        )
        assert status == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 2
        assert payload["files_scanned"] == 1
        assert payload["new_count"] == 1
        assert payload["baseline_used"] is False
        assert payload["stale_baseline_count"] == 0
        (finding,) = payload["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "end_line", "col",
            "message", "hint", "baselined",
        }
        assert finding["rule"] == "DET002"
        assert finding["path"] == "bad.py"
        assert finding["line"] == 2
        assert finding["end_line"] == 2
        assert finding["baselined"] is False

    def test_write_then_gate_green(self, tmp_path, capsys):
        self._write_bad(tmp_path)
        assert repro_main(
            ["lint", "bad.py", "--root", str(tmp_path), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert repro_main(
            ["lint", "bad.py", "--root", str(tmp_path)]
        ) == 0
        payload = json.loads((tmp_path / "lint-baseline.json").read_text())
        assert payload["version"] == 1 and len(payload["findings"]) == 1

    def test_unknown_path_is_usage_error(self, tmp_path):
        assert repro_main(
            ["lint", "nope.py", "--root", str(tmp_path)]
        ) == 2

    def test_select_unknown_rule_exits(self, tmp_path):
        self._write_bad(tmp_path)
        with pytest.raises(SystemExit):
            repro_main(
                ["lint", "bad.py", "--root", str(tmp_path),
                 "--select", "NOPE999"]
            )

    def test_list_rules_covers_rule_pack(self, capsys):
        assert repro_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out

    def test_syntax_error_reported_not_raised(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = run_lint(["broken.py"], root=tmp_path)
        assert rule_ids(result.new) == [PARSE_RULE_ID]


class TestMetaGate:
    def test_rule_pack_has_required_families(self):
        families = {rule_id[:-3] for rule_id in RULES}
        assert {"DET", "SAFE", "PERF", "API", "ARCH", "SHM", "OBS"} \
            <= families
        assert len(RULES) >= 12

    def test_repo_is_clean_against_committed_baseline(self):
        baseline_path = REPO / "lint-baseline.json"
        assert baseline_path.is_file(), "lint-baseline.json must be committed"
        baseline = baseline_mod.load(baseline_path)
        result = run_lint(
            ["src", "tests", "benchmarks", "scripts"],
            root=REPO, baseline=baseline,
        )
        rendered = "\n".join(f.render() for f in result.new)
        assert result.new == [], f"new lint findings:\n{rendered}"
        assert result.files_scanned > 150


class TestDet004SeedProvenance:
    def test_literal_seed_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            rng = np.random.default_rng(42)
        """)
        assert rule_ids(findings) == ["DET004"]
        assert "a literal" in findings[0].message

    def test_no_arg_draws_os_entropy_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert rule_ids(findings) == ["DET004"]
        assert "OS entropy" in findings[0].message

    def test_untainted_local_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            def make():
                fixed = 7
                return np.random.default_rng(fixed)
        """)
        assert rule_ids(findings) == ["DET004"]
        assert "an untainted local" in findings[0].message

    def test_config_field_seed_ok(self):
        findings = lint_snippet("""
            import numpy as np
            def make(config):
                return np.random.default_rng(config.seed)
        """)
        assert findings == []

    def test_spawn_child_ok(self):
        findings = lint_snippet("""
            import numpy as np
            def make(seq):
                child, = seq.spawn(1)
                return np.random.default_rng(child)
        """)
        assert findings == []

    def test_closure_read_of_enclosing_param_ok(self):
        findings = lint_snippet("""
            import numpy as np
            def outer(seed):
                def inner():
                    return np.random.default_rng(seed)
                return inner
        """)
        assert findings == []

    def test_literal_inside_lambda_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            make = lambda: np.random.default_rng(3)
        """)
        assert rule_ids(findings) == ["DET004"]

    def test_from_import_alias_flagged(self):
        findings = lint_snippet("""
            from numpy.random import default_rng as mk
            rng = mk(5)
        """)
        assert rule_ids(findings) == ["DET004"]

    def test_seed_sequence_literal_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            seq = np.random.SeedSequence(1234)
        """)
        assert rule_ids(findings) == ["DET004"]

    def test_clean_reassignment_kills_taint(self):
        # seed is rebound to a literal before use: the param taint dies
        findings = lint_snippet("""
            import numpy as np
            def make(seed):
                seed = 9
                return np.random.default_rng(seed)
        """)
        assert rule_ids(findings) == ["DET004"]

    def test_tests_dir_not_in_scope(self):
        findings = lint_snippet(
            "import numpy as np\nrng = np.random.default_rng(42)\n",
            rel_path="tests/test_something.py",
        )
        assert findings == []


class TestShm001WriteSafety:
    def test_subscript_store_flagged(self):
        findings = lint_snippet("""
            from repro.fleet import shm
            def worker(handle):
                cols = shm.attach(handle)
                cols.health[0] = 2
        """)
        assert rule_ids(findings) == ["SHM001"]
        assert "subscript store" in findings[0].message

    def test_augmented_subscript_store_flagged(self):
        findings = lint_snippet("""
            from repro.fleet import shm
            def worker(handle):
                cols = shm.attach(handle)
                cols.health[0] += 1
        """)
        assert rule_ids(findings) == ["SHM001"]
        assert "augmented" in findings[0].message

    def test_inplace_fill_flagged(self):
        findings = lint_snippet("""
            from repro.fleet import shm
            def worker(handle):
                cols = shm.attach(handle)
                cols.health.fill(0)
        """)
        assert rule_ids(findings) == ["SHM001"]
        assert ".fill()" in findings[0].message

    def test_np_copyto_flagged(self):
        findings = lint_snippet("""
            import numpy as np
            from repro.fleet import shm
            def worker(handle, src):
                cols = shm.attach(handle)
                np.copyto(cols.health, src)
        """)
        assert rule_ids(findings) == ["SHM001"]

    def test_view_alias_carries_taint(self):
        findings = lint_snippet("""
            from repro.fleet import shm
            def worker(handle):
                cols = shm.attach(handle)
                view = cols.health
                view[0] = 1
        """)
        assert rule_ids(findings) == ["SHM001"]

    def test_thaw_kills_taint(self):
        findings = lint_snippet("""
            from repro.fleet import shm
            def worker(handle):
                cols = shm.attach(handle)
                mine = cols.thaw()
                mine.health[0] = 1
        """)
        assert findings == []

    def test_from_import_attach_flagged(self):
        findings = lint_snippet("""
            from repro.fleet.shm import attach
            def worker(handle):
                cols = attach(handle)
                cols.health[0] = 2
        """)
        assert rule_ids(findings) == ["SHM001"]

    def test_unrelated_array_writes_ok(self):
        findings = lint_snippet("""
            import numpy as np
            def work(n):
                arr = np.zeros(n)
                arr[0] = 1
                arr.fill(2)
                arr += 1
        """)
        assert findings == []


class TestArch001LayerDag:
    FLEET = "src/repro/fleet/snippet.py"

    def test_back_edge_flagged(self):
        findings = lint_snippet(
            "from repro.engine import runner\n", rel_path=self.FLEET
        )
        assert rule_ids(findings) == ["ARCH001"]
        assert "higher layer" in findings[0].message

    def test_downward_edge_ok(self):
        findings = lint_snippet(
            "from repro.core import events\n", rel_path=self.FLEET
        )
        assert findings == []

    def test_same_package_ok(self):
        findings = lint_snippet(
            "from repro.fleet import columns\n", rel_path=self.FLEET
        )
        assert findings == []

    def test_function_local_import_is_sanctioned(self):
        findings = lint_snippet("""
            def late():
                from repro.engine import runner
                return runner
        """, rel_path=self.FLEET)
        assert findings == []

    def test_type_checking_import_is_sanctioned(self):
        findings = lint_snippet("""
            from typing import TYPE_CHECKING
            if TYPE_CHECKING:
                from repro.engine import runner
        """, rel_path=self.FLEET)
        assert findings == []

    def test_noqa_documents_a_deliberate_embed(self):
        findings = lint_snippet(
            "from repro.engine import runner"
            "  # repro: noqa-ARCH001 -- test embed\n",
            rel_path=self.FLEET,
        )
        assert findings == []

    def test_unknown_imported_package_flagged(self):
        findings = lint_snippet(
            "from repro.mystery import thing\n", rel_path=self.FLEET
        )
        assert rule_ids(findings) == ["ARCH001"]
        assert "not in the LintConfig.layers" in findings[0].message

    def test_unplaced_own_subpackage_flagged(self):
        findings = lint_snippet(
            "x = 1\n", rel_path="src/repro/newpkg/mod.py"
        )
        assert rule_ids(findings) == ["ARCH001"]
        assert "'newpkg' is not in the LintConfig.layers" \
            in findings[0].message

    def test_loose_top_level_module_sits_on_top(self):
        # entry-point shapes (src/repro/<name>.py) may import anything
        findings = lint_snippet(
            "from repro.engine import runner\n",
            rel_path="src/repro/tool.py",
        )
        assert findings == []


class TestObs003DeadNames:
    def _project(self, tmp_path: Path) -> Path:
        obs = tmp_path / "src" / "repro" / "obs"
        obs.mkdir(parents=True)
        (obs / "names.py").write_text(
            'ATTR_USED = "campaign.ticks"\n'
            'IMPORT_USED = "core.mces"\n'
            'VALUE_USED = "fleet.size"\n'
            'DEAD = "campaign.never"\n'
        )
        (tmp_path / "src" / "repro" / "user.py").write_text(
            "from repro.obs import names\n"
            "from repro.obs.names import IMPORT_USED\n"
            "def report(metrics):\n"
            "    metrics.counter('fleet.size', 1)\n"
            "    return names.ATTR_USED, IMPORT_USED\n"
        )
        return tmp_path

    def test_only_dead_constant_flagged(self, tmp_path):
        root = self._project(tmp_path)
        result = run_lint(["src"], root=root)
        obs3 = [f for f in result.new if f.rule_id == "OBS003"]
        assert len(obs3) == 1
        assert "DEAD" in obs3[0].message
        assert obs3[0].path == "src/repro/obs/names.py"
        assert obs3[0].line == 4

    def test_quiet_without_names_module(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "src" / "repro" / "mod.py").write_text("x = 1\n")
        result = run_lint(["src"], root=tmp_path)
        assert [f for f in result.new if f.rule_id == "OBS003"] == []


class TestMultiLineNoqa:
    SOURCE = (
        "import time\n"
        "t = time.time(\n"
        ")  # repro: noqa-DET002 -- multi-line call, comment on last line\n"
    )

    def test_noqa_on_last_line_of_node_suppresses(self):
        assert lint_snippet(self.SOURCE) == []

    def test_wrong_rule_id_on_last_line_does_not(self):
        source = self.SOURCE.replace("noqa-DET002", "noqa-DET001")
        assert rule_ids(lint_snippet(source)) == ["DET002"]

    def test_noqa_below_the_node_does_not_leak(self):
        source = (
            "import time\n"
            "t = time.time()\n"
            "x = 1  # repro: noqa-DET002\n"
        )
        assert rule_ids(lint_snippet(source)) == ["DET002"]

    def test_end_line_recorded_on_finding(self):
        (finding,) = lint_snippet(
            "import time\nt = time.time(\n)\n"
        )
        assert finding.line == 2 and finding.last_line == 3


class TestIncrementalCache:
    def _setup(self, tmp_path: Path) -> Path:
        (tmp_path / "a.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "b.py").write_text(
            "import time\nu = time.time()  # repro: noqa-DET002 -- ui\n"
        )
        return tmp_path / "cache.json"

    def _run(self, tmp_path: Path, cache: Path, **kwargs):
        from repro.lint.stats import LintStats

        stats = LintStats()
        result = run_lint(
            ["a.py", "b.py"], root=tmp_path, cache_path=cache,
            stats=stats, **kwargs
        )
        return result, stats

    def test_warm_run_hits_every_unchanged_file(self, tmp_path):
        cache = self._setup(tmp_path)
        cold, cold_stats = self._run(tmp_path, cache)
        assert cold_stats.files_from_cache == 0
        assert cache.is_file()
        warm, warm_stats = self._run(tmp_path, cache)
        assert warm_stats.files_from_cache == 2
        assert warm.to_json() == cold.to_json()
        assert warm.suppressed == cold.suppressed == 1

    def test_editing_one_file_relints_only_it(self, tmp_path):
        cache = self._setup(tmp_path)
        self._run(tmp_path, cache)
        (tmp_path / "b.py").write_text("x = 1\n")
        warm, stats = self._run(tmp_path, cache)
        # a.py unchanged -> served from cache; only b.py re-linted
        assert stats.files_from_cache == 1
        assert len(warm.new) == 1 and warm.suppressed == 0

    def test_rule_selection_invalidates_wholesale(self, tmp_path):
        cache = self._setup(tmp_path)
        self._run(tmp_path, cache)
        _, stats = self._run(
            tmp_path, cache,
            config=LintConfig(select=frozenset({"DET002"})),
        )
        assert stats.files_from_cache == 0

    def test_corrupt_cache_degrades_to_cold_run(self, tmp_path):
        cache = self._setup(tmp_path)
        cold, _ = self._run(tmp_path, cache)
        cache.write_text("{not json")
        warm, stats = self._run(tmp_path, cache)
        assert stats.files_from_cache == 0
        assert warm.to_json() == cold.to_json()

    def test_statistics_identical_cold_and_warm(self, tmp_path):
        cache = self._setup(tmp_path)
        _, cold_stats = self._run(tmp_path, cache)
        _, warm_stats = self._run(tmp_path, cache)
        assert warm_stats.rule_findings == cold_stats.rule_findings
        assert warm_stats.rule_suppressions == cold_stats.rule_suppressions
        payload = warm_stats.to_json()
        assert payload["version"] == 1
        assert set(payload) == {"version", "files", "rules", "phases"}


class TestParallelWorkers:
    def test_worker_count_never_changes_the_report(self, tmp_path):
        for index in range(4):
            (tmp_path / f"mod{index}.py").write_text(
                "import time\n"
                f"t{index} = time.time()\n"
                "x = {1, 2}\n"
                "for item in {3, 4}:\n"
                "    pass\n"
            )
        paths = [f"mod{index}.py" for index in range(4)]
        serial = run_lint(paths, root=tmp_path, workers=1)
        pooled = run_lint(paths, root=tmp_path, workers=2)
        assert serial.to_json() == pooled.to_json()
        assert len(serial.new) > 0


#: the structural subset of the SARIF 2.1.0 schema this repo relies on
#: (vendored: CI has no network; the full spec schema is ~250 KB)
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                                "properties": {
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": [
                                                "id", "shortDescription",
                                            ],
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": [
                                "ruleId", "level", "message", "locations",
                            ],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                    "items": {
                                        "type": "object",
                                        "required": ["physicalLocation"],
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": [
                                                    "artifactLocation",
                                                    "region",
                                                ],
                                                "properties": {
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifExport:
    def _result(self, tmp_path: Path):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        (tmp_path / "old.py").write_text("import time\nu = time.time()\n")
        first = run_lint(["old.py"], root=tmp_path)
        baseline = baseline_mod.count_fingerprints(first.new)
        return run_lint(
            ["bad.py", "old.py"], root=tmp_path, baseline=baseline
        )

    def test_payload_validates_against_subset_schema(self, tmp_path):
        jsonschema = pytest.importorskip("jsonschema")
        from repro.lint.sarif import to_sarif

        payload = to_sarif(self._result(tmp_path))
        jsonschema.validate(payload, SARIF_SUBSET_SCHEMA)

    def test_shape_conventions(self, tmp_path):
        from repro.lint.sarif import FINGERPRINT_KEY, to_sarif

        payload = to_sarif(self._result(tmp_path))
        (run,) = payload["runs"]
        rule_ids_listed = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert set(RULES) <= rule_ids_listed
        assert "LINT000" in rule_ids_listed
        assert run["columnKind"] == "utf16CodeUnits"
        assert "ROOT" in run["originalUriBaseIds"]
        new_row, old_row = run["results"]
        assert new_row["ruleId"] == "DET002"
        assert "suppressions" not in new_row
        assert old_row["suppressions"] == [{"kind": "external"}]
        region = new_row["locations"][0]["physicalLocation"]["region"]
        # repro.lint columns are 0-based; SARIF regions are 1-based
        assert region["startColumn"] >= 1
        assert region["startLine"] == 2
        fingerprint = new_row["partialFingerprints"][FINGERPRINT_KEY]
        assert fingerprint.startswith("bad.py::DET002::")
        rules_list = run["tool"]["driver"]["rules"]
        assert rules_list[new_row["ruleIndex"]]["id"] == "DET002"

    def test_cli_writes_sarif_file(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("import time\nt = time.time()\n")
        out = tmp_path / "out.sarif"
        status = repro_main(
            ["lint", "bad.py", "--root", str(tmp_path), "--no-baseline",
             "--sarif", str(out)]
        )
        assert status == 1
        payload = json.loads(out.read_text())
        assert payload["version"] == "2.1.0"
        assert payload["runs"][0]["results"][0]["ruleId"] == "DET002"


class TestPruneBaselineAndStatistics:
    def _grandfather(self, tmp_path: Path, capsys) -> None:
        (tmp_path / "mod.py").write_text(
            "import time\na = time.time()\nb = time.time()\n"
        )
        assert repro_main(
            ["lint", "mod.py", "--root", str(tmp_path), "--write-baseline"]
        ) == 0
        capsys.readouterr()

    def test_stale_note_then_prune_tightens(self, tmp_path, capsys):
        self._grandfather(tmp_path, capsys)
        # fix one of the two grandfathered findings -> 1 stale entry
        (tmp_path / "mod.py").write_text("import time\na = time.time()\n")
        assert repro_main(
            ["lint", "mod.py", "--root", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "no longer match" in err and "--prune-baseline" in err
        assert repro_main(
            ["lint", "mod.py", "--root", str(tmp_path), "--prune-baseline"]
        ) == 0
        err = capsys.readouterr().err
        assert "pruned" in err and "1 stale" in err
        payload = json.loads(
            (tmp_path / "lint-baseline.json").read_text()
        )
        assert sum(payload["findings"].values()) == 1
        assert repro_main(
            ["lint", "mod.py", "--root", str(tmp_path)]
        ) == 0
        assert "no longer match" not in capsys.readouterr().err

    def test_prune_without_baseline_is_usage_error(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert repro_main(
            ["lint", "mod.py", "--root", str(tmp_path),
             "--prune-baseline", "--no-baseline"]
        ) == 2

    def test_statistics_table_on_stderr(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("import time\nt = time.time()\n")
        repro_main(
            ["lint", "mod.py", "--root", str(tmp_path), "--no-baseline",
             "--statistics"]
        )
        err = capsys.readouterr().err
        assert "lint statistics:" in err
        assert "DET002" in err
        assert "per phase (seconds):" in err

    def test_statistics_json_artifact(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("import time\nt = time.time()\n")
        out = tmp_path / "LINT_STATS.json"
        repro_main(
            ["lint", "mod.py", "--root", str(tmp_path), "--no-baseline",
             "--statistics-json", str(out)]
        )
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        assert payload["files"]["scanned"] == 1
        assert payload["rules"]["DET002"]["findings"] == 1
        assert set(payload["phases"]) >= {"discover", "files", "read"}

    def test_no_cache_flag_skips_cache_file(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("x = 1\n")
        repro_main(
            ["lint", "mod.py", "--root", str(tmp_path), "--no-cache"]
        )
        assert not (tmp_path / ".repro-lint-cache.json").exists()
        repro_main(["lint", "mod.py", "--root", str(tmp_path)])
        assert (tmp_path / ".repro-lint-cache.json").exists()
