"""Lockstep pair execution."""

import numpy as np
import pytest

from repro.detection.lockstep import LockstepMismatch, LockstepPair
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op
from repro.workloads.hashing import fnv1a


def _pair(defective_primary=False, rate=1.0):
    defects = [
        StuckBitDefect("d", bit=1, base_rate=rate, unit=FunctionalUnit.ALU)
    ]
    primary = Core(
        "ls/a", defects=defects if defective_primary else (),
        rng=np.random.default_rng(0),
    )
    shadow = Core("ls/b", rng=np.random.default_rng(1))
    return LockstepPair(primary, shadow)


class TestLockstep:
    def test_healthy_pair_agrees(self):
        pair = _pair()
        assert pair.execute(Op.ADD, 2, 3) == 5
        assert pair.mismatches == 0

    def test_mismatch_detected_immediately(self):
        pair = _pair(defective_primary=True)
        with pytest.raises(LockstepMismatch) as excinfo:
            pair.execute(Op.XOR, 0, 0)
        assert excinfo.value.result_a != excinfo.value.result_b
        assert pair.mismatches == 1

    def test_mismatch_does_not_say_which_core(self):
        pair = _pair(defective_primary=True)
        try:
            pair.execute(Op.XOR, 0, 0)
        except LockstepMismatch as mismatch:
            # Both answers are carried; neither is labeled correct.
            assert {mismatch.result_a, mismatch.result_b} == {0, 2}

    def test_workload_runs_unchanged_on_pair(self):
        pair = _pair()
        healthy = Core("ls/solo", rng=np.random.default_rng(2))
        assert fnv1a(pair, b"abc") == fnv1a(healthy, b"abc")

    def test_intermittent_defect_caught_mid_workload(self):
        pair = _pair(defective_primary=True, rate=2e-3)
        with pytest.raises(LockstepMismatch):
            for index in range(400):
                fnv1a(pair, bytes([index % 256]) * 16)

    def test_cost_factor_is_two(self):
        assert _pair().cost_factor == 2.0

    def test_members_must_be_distinct(self):
        core = Core("ls/x", rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            LockstepPair(core, core)

    def test_both_members_execute_every_op(self):
        pair = _pair()
        pair.execute(Op.ADD, 1, 1)
        assert pair.primary.ops_executed == 1
        assert pair.shadow.ops_executed == 1
