"""Storage campaign behaviour: chaos script, protection stacks, determinism."""

import json

import pytest

from repro.chaos import ChaosKind, ChaosSchedule
from repro.core.events import EventKind
from repro.storage import (
    StorageCampaign,
    StorageCampaignConfig,
    StorageProtections,
    build_storage_fleet,
)
from repro.storage.campaign import STORAGE_EVENT_KINDS

TICKS = 200
ONSET_AGE_DAYS = 400.0


def _campaign(protections, ticks=TICKS, seed=3):
    machines, bad_core_id = build_storage_fleet(
        onset_days=ONSET_AGE_DAYS, seed=7
    )
    campaign = StorageCampaign(
        machines, protections, StorageCampaignConfig(ticks=ticks), seed=seed
    )
    victim = next(
        replica.core_id for replica in campaign.store.replicas
        if replica.core_id != bad_core_id
    )
    campaign.chaos = ChaosSchedule.storage_standard(
        bad_core_id, victim, ticks, onset_age_days=ONSET_AGE_DAYS
    )
    return campaign, bad_core_id


class TestStorageChaosSchedule:
    def test_storage_standard_covers_the_scripted_faults(self):
        schedule = ChaosSchedule.storage_standard("bad", "victim", 600)
        kinds = [action.kind for action in schedule.actions]
        assert kinds.count(ChaosKind.CRASH_CORE) == 2
        assert ChaosKind.ACTIVATE_DEFECT in kinds
        assert ChaosKind.MACHINE_CHECK_BURST in kinds
        assert ChaosKind.TRAFFIC_BURST in kinds
        ticks = [action.at_tick for action in schedule.actions]
        assert ticks == sorted(ticks)
        assert all(action.at_tick < 600 for action in schedule.actions)

    def test_serving_shim_warns_but_still_exports_the_shared_chaos(self):
        with pytest.warns(DeprecationWarning, match="repro.chaos"):
            from repro.serving.chaos import ChaosSchedule as ShimSchedule

        assert ShimSchedule is ChaosSchedule


class TestStorageCampaign:
    def test_protected_store_beats_the_trusting_baseline(self):
        naive, bad_core_id = _campaign(StorageProtections.unprotected())
        protected, _ = _campaign(StorageProtections.protected())
        naive_card = naive.run()
        protected_card = protected.run()

        # The baseline serves corrupt bytes and permanently loses keys;
        # the full stack does neither.
        assert naive_card.escape_rate > 0.0
        assert naive_card.unrecoverable_keys > 0
        assert protected_card.escape_rate == 0.0
        assert protected_card.unrecoverable_keys == 0
        assert protected_card.read_availability >= naive_card.read_availability

        # Storage integrity signals exist, are attributed to the bad
        # core, and drive its quarantine; the baseline has no integrity
        # signal at all, so it never fingers the defective core.
        storage_events = [
            e for e in protected.events if e.kind in STORAGE_EVENT_KINDS
        ]
        assert storage_events
        assert any(e.core_id == bad_core_id for e in storage_events)
        assert bad_core_id in protected_card.quarantine_tick
        assert bad_core_id not in naive_card.quarantine_tick
        assert not any(
            e.kind in STORAGE_EVENT_KINDS for e in naive.events
        )

    def test_verify_after_encrypt_gates_the_unrecoverable_incident(self):
        # Drop only the §5.2 defence: mis-encrypted records replicate
        # cleanly (every replica holds the same wrong ciphertext, so
        # quorums agree) and some keys become unrecoverable.
        no_verify, _ = _campaign(StorageProtections.no_encrypt_verify())
        card = no_verify.run()
        assert card.unrecoverable_keys > 0

    def test_quarantine_replacement_keeps_the_store_replicated(self):
        protected, bad_core_id = _campaign(StorageProtections.protected())
        card = protected.run()
        assert bad_core_id in card.quarantine_tick
        replica_cores = {r.core_id for r in protected.store.replicas}
        assert bad_core_id not in replica_cores
        assert len(replica_cores) == 3
        # The replacement replica started empty and was backfilled.
        assert card.backfills > 0

    def test_fixed_seed_reproduces_byte_identical_results(self):
        first, _ = _campaign(StorageProtections.protected(), ticks=150)
        second, _ = _campaign(StorageProtections.protected(), ticks=150)
        card_a = first.run()
        card_b = second.run()
        json_a = json.dumps(card_a.to_json(), sort_keys=True)
        json_b = json.dumps(card_b.to_json(), sort_keys=True)
        assert json_a == json_b
        events_a = [
            (e.time_days, e.core_id, e.kind, e.detail) for e in first.events
        ]
        events_b = [
            (e.time_days, e.core_id, e.kind, e.detail) for e in second.events
        ]
        assert events_a == events_b

    def test_scorecard_json_is_strict_and_complete(self):
        protected, _ = _campaign(StorageProtections.protected(), ticks=150)
        payload = protected.run().to_json()
        parsed = json.loads(json.dumps(payload, allow_nan=False))
        for field in (
            "escape_rate", "unrecoverable_loss_rate", "read_availability",
            "write_amplification", "mean_repair_latency_ms",
            "wal_corrupt_records", "quarantine_tick",
        ):
            assert field in parsed

    def test_generic_weights_never_beat_dedicated_ones(self):
        dedicated, bad_core_id = _campaign(StorageProtections.protected())
        generic, _ = _campaign(StorageProtections.generic_weights())
        card_d = dedicated.run()
        card_g = generic.run()
        assert bad_core_id in card_d.quarantine_tick
        assert bad_core_id in card_g.quarantine_tick
        assert (
            card_d.quarantine_tick[bad_core_id]
            <= card_g.quarantine_tick[bad_core_id]
        )

    def test_machine_check_burst_alone_cannot_frame_a_healthy_core(self):
        # In the baseline the only signal is the chaos MCE burst on the
        # innocent victim: whatever the policy does with it, the actual
        # corruptor is never the one quarantined.
        naive, bad_core_id = _campaign(StorageProtections.unprotected())
        card = naive.run()
        assert bad_core_id not in card.quarantine_tick
        burst_mces = [
            e for e in naive.events if e.kind is EventKind.MACHINE_CHECK
        ]
        assert burst_mces
