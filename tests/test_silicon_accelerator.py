"""Matrix accelerator with PE defects (§9 extension)."""

import numpy as np
import pytest

from repro.silicon.accelerator import (
    MatrixAccelerator,
    PeDefect,
    abft_tile_check,
    column_error_signature,
    screen_accelerator,
)


def _matrices(rng, n=8, bits=32):
    a = [[int(x) for x in row] for row in rng.integers(0, 2**bits, (n, n))]
    b = [[int(x) for x in row] for row in rng.integers(0, 2**bits, (n, n))]
    return a, b


def _healthy(size=8):
    return MatrixAccelerator("acc/h", size=size, rng=np.random.default_rng(0))


def _defective(rate=0.02, size=8, seed=1):
    return MatrixAccelerator(
        "acc/bad", size=size,
        defects=[PeDefect(row=2, col=5, bit=17, rate=rate)],
        rng=np.random.default_rng(seed),
    )


class TestHealthyAccelerator:
    def test_matmul_matches_golden(self, rng):
        accel = _healthy()
        a, b = _matrices(rng)
        assert accel.matmul(a, b) == accel.golden_matmul(a, b)

    def test_non_square_tiles(self, rng):
        accel = _healthy()
        a = [[int(x) for x in row] for row in rng.integers(0, 2**20, (3, 8))]
        b = [[int(x) for x in row] for row in rng.integers(0, 2**20, (8, 5))]
        assert accel.matmul(a, b) == accel.golden_matmul(a, b)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            _healthy().matmul([[1, 2]], [[1, 2]])

    def test_screening_passes(self):
        assert screen_accelerator(_healthy(), n_tiles=4)

    def test_tile_accounting(self, rng):
        accel = _healthy(size=4)
        a, b = _matrices(rng, n=8)
        accel.matmul(a, b)
        assert accel.tiles_executed >= 4


class TestDefectiveAccelerator:
    def test_errors_concentrate_on_one_column_class(self, rng):
        accel = _defective(rate=0.3)
        a, b = _matrices(rng, n=16)
        observed = accel.matmul(a, b)
        expected = accel.golden_matmul(a, b)
        signature = column_error_signature(observed, expected, accel.size)
        assert signature  # corruption happened
        assert set(signature) == {5}  # the defective PE's column class

    def test_screening_extracts_confession(self):
        assert not screen_accelerator(_defective(rate=0.3), n_tiles=6)

    def test_low_rate_defect_needs_more_tiles(self):
        quiet = _defective(rate=1e-4, seed=3)
        # one tile rarely catches it; many tiles eventually do —
        # the §4 "how many cycles devoted to testing" story again.
        few = screen_accelerator(quiet, n_tiles=1, seed=0)
        assert few in (True, False)  # smoke: no crash on low rates

    def test_defect_coordinates_validated(self):
        with pytest.raises(ValueError):
            MatrixAccelerator("x", size=4, defects=[PeDefect(row=9, col=0)])
        with pytest.raises(ValueError):
            PeDefect(row=0, col=0, rate=2.0)

    def test_corruption_counter_is_ground_truth(self, rng):
        accel = _defective(rate=0.5)
        a, b = _matrices(rng)
        accel.matmul(a, b)
        assert accel.corruptions_induced > 0


class TestAbftOnAccelerator:
    def test_healthy_tile_consistent(self, rng):
        accel = _healthy()
        a, b = _matrices(rng)
        body, consistent = abft_tile_check(accel, a, b)
        assert consistent
        assert body == accel.golden_matmul(a, b)

    def test_defective_tile_flagged(self, rng):
        accel = _defective(rate=0.3)
        flagged = 0
        for _ in range(6):
            a, b = _matrices(rng)
            _, consistent = abft_tile_check(accel, a, b)
            flagged += not consistent
        assert flagged > 0

    def test_retry_on_healthy_unit_recovers(self, rng):
        bad = _defective(rate=0.3)
        good = _healthy()
        retried = 0
        for _ in range(8):
            a, b = _matrices(rng)
            body, consistent = abft_tile_check(bad, a, b)
            if consistent:
                continue
            retried += 1
            body, consistent = abft_tile_check(good, a, b)
            assert consistent
            assert body == good.golden_matmul(a, b)
        assert retried > 0

    def test_checksum_collision_is_the_known_blind_spot(self, rng):
        """At high corruption rates, data and checksum can corrupt
        compensatingly (probability ~rate^2): the documented reason
        single-checksum ABFT is paired with retry, not trusted alone."""
        bad = _defective(rate=0.5, seed=4)
        collisions = 0
        for _ in range(20):
            a, b = _matrices(rng)
            body, consistent = abft_tile_check(bad, a, b)
            if consistent and body != bad.golden_matmul(a, b):
                collisions += 1
        # Not asserting > 0 (it is probabilistic); asserting the
        # mechanism stays rare relative to honest flags.
        assert collisions <= 20
