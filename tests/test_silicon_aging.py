"""Aging profiles and onset sampling."""

import numpy as np
import pytest

from repro.silicon.aging import AgingProfile, IMMEDIATE, WeibullOnset


class TestAgingProfile:
    def test_immediate_is_always_active(self):
        assert IMMEDIATE.is_active(0.0)
        assert IMMEDIATE.rate_multiplier(0.0) == 1.0

    def test_latent_until_onset(self):
        profile = AgingProfile(onset_days=100.0)
        assert not profile.is_active(99.0)
        assert profile.rate_multiplier(99.0) == 0.0
        assert profile.is_active(100.0)

    def test_escalation_doubles_per_year(self):
        profile = AgingProfile(onset_days=0.0, escalation_per_year=2.0)
        assert profile.rate_multiplier(365.0) == pytest.approx(2.0)
        assert profile.rate_multiplier(730.0) == pytest.approx(4.0)

    def test_escalation_saturates(self):
        profile = AgingProfile(
            onset_days=0.0, escalation_per_year=10.0, saturation=50.0
        )
        assert profile.rate_multiplier(10 * 365.0) == 50.0

    def test_stable_defect_never_escalates(self):
        profile = AgingProfile(onset_days=0.0, escalation_per_year=1.0)
        assert profile.rate_multiplier(3650.0) == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AgingProfile(onset_days=-1.0)
        with pytest.raises(ValueError):
            AgingProfile(escalation_per_year=0.5)
        with pytest.raises(ValueError):
            AgingProfile(saturation=0.5)


class TestWeibullOnset:
    def test_escape_fraction_yields_day_zero_defects(self):
        onset = WeibullOnset(escape_fraction=1.0)
        rng = np.random.default_rng(0)
        assert all(onset.sample(rng) == 0.0 for _ in range(20))

    def test_cdf_monotone_and_bounded(self):
        onset = WeibullOnset()
        ages = [0.0, 100.0, 500.0, 2000.0]
        values = [onset.cdf(a) for a in ages]
        assert values == sorted(values)
        assert 0.0 <= values[0] <= values[-1] <= 1.0

    def test_cdf_at_zero_equals_escape_fraction(self):
        onset = WeibullOnset(escape_fraction=0.4)
        assert onset.cdf(0.0) == pytest.approx(0.4)

    def test_empirical_matches_cdf(self):
        onset = WeibullOnset()
        rng = np.random.default_rng(3)
        samples = [onset.sample(rng) for _ in range(4000)]
        for horizon in (180.0, 365.0, 730.0):
            empirical = sum(1 for s in samples if s <= horizon) / len(samples)
            assert empirical == pytest.approx(onset.cdf(horizon), abs=0.03)

    def test_sample_profile_escalation_in_range(self):
        onset = WeibullOnset()
        rng = np.random.default_rng(5)
        profile = onset.sample_profile(rng, escalation_range=(1.5, 2.5))
        assert 1.5 <= profile.escalation_per_year <= 2.5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WeibullOnset(scale_days=0.0)
        with pytest.raises(ValueError):
            WeibullOnset(shape=-1.0)
        with pytest.raises(ValueError):
            WeibullOnset(escape_fraction=1.5)
