"""Contract tests for the obs metrics registry and its exporters.

The registry's promises: get-or-create handles that survive resets,
Prometheus-compatible histogram bucket semantics, a hard cardinality
ceiling, and snapshot/merge round-trips that make pool gather exact.
"""

import json

import pytest

from repro.obs.export import to_json, to_prometheus
from repro.obs.registry import (
    CardinalityError,
    DEFAULT_BUCKETS,
    MAX_LABEL_SETS,
    MetricsRegistry,
)


@pytest.fixture
def registry() -> MetricsRegistry:
    return MetricsRegistry(enabled=True)


class TestCounters:
    def test_inc_and_value(self, registry):
        c = registry.counter("ops_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labeled_series_are_independent(self, registry):
        c = registry.counter("req_total")
        c.inc(status="ok")
        c.inc(status="ok")
        c.inc(status="fail")
        assert c.value(status="ok") == 2.0
        assert c.value(status="fail") == 1.0
        assert c.value(status="missing") == 0.0

    def test_negative_increment_rejected(self, registry):
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("n").inc(-1.0)

    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_kind_mismatch_raises(self, registry):
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x")
        c.inc(100)
        assert c.value() == 0.0


class TestGauges:
    def test_set_wins(self, registry):
        g = registry.gauge("depth")
        g.set(5)
        g.set(2)
        assert g.value() == 2.0

    def test_inc(self, registry):
        g = registry.gauge("depth")
        g.inc(3)
        g.inc(-1)
        assert g.value() == 2.0


class TestHistogramBuckets:
    """The le-semantics contract: value lands in first bucket >= it."""

    def test_value_on_boundary_lands_in_that_bucket(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 5.0, 10.0))
        h.observe(1.0)   # exactly le=1
        h.observe(5.0)   # exactly le=5
        state = h.state()
        assert state.counts == [1, 1, 0, 0]

    def test_value_above_last_bound_lands_in_inf(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 5.0))
        h.observe(5.0001)
        h.observe(1e9)
        assert h.state().counts == [0, 0, 2]

    def test_sum_and_count(self, registry):
        h = registry.histogram("lat", buckets=(1.0,))
        for v in (0.5, 2.0, 3.0):
            h.observe(v)
        state = h.state()
        assert state.count == 3
        assert state.sum == pytest.approx(5.5)

    def test_default_buckets_used_when_unspecified(self, registry):
        h = registry.histogram("lat")
        assert h.buckets == DEFAULT_BUCKETS

    def test_non_increasing_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("bad2", buckets=(5.0, 1.0))

    def test_empty_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="at least one"):
            registry.histogram("bad", buckets=())


class TestCardinalityGuard:
    def test_65th_label_set_raises_with_clear_error(self, registry):
        c = registry.counter("fanout_total")
        for i in range(MAX_LABEL_SETS):
            c.inc(shard=str(i))
        with pytest.raises(CardinalityError) as excinfo:
            c.inc(shard="one-too-many")
        message = str(excinfo.value)
        assert "fanout_total" in message
        assert str(MAX_LABEL_SETS) in message

    def test_existing_label_set_still_writable_at_ceiling(self, registry):
        c = registry.counter("fanout_total")
        for i in range(MAX_LABEL_SETS):
            c.inc(shard=str(i))
        c.inc(shard="0")  # not a new series: must not raise
        assert c.value(shard="0") == 2.0

    def test_reset_clears_label_sets(self, registry):
        c = registry.counter("fanout_total")
        for i in range(MAX_LABEL_SETS):
            c.inc(shard=str(i))
        registry.reset()
        c.inc(shard="fresh")  # room again after reset
        assert c.value(shard="fresh") == 1.0


class TestResetAndHandles:
    def test_reset_keeps_cached_handles_valid(self, registry):
        c = registry.counter("ops_total")
        c.inc(7)
        registry.reset()
        assert c.value() == 0.0
        c.inc()
        assert c.value() == 1.0
        assert registry.counter("ops_total") is c


class TestSnapshotMerge:
    def test_counter_merge_adds(self, registry):
        registry.counter("ops_total").inc(3, kind="a")
        snap = registry.snapshot()
        registry.merge(snap)
        assert registry.counter("ops_total").value(kind="a") == 6.0

    def test_gauge_merge_overwrites(self, registry):
        registry.gauge("depth").set(5)
        snap = registry.snapshot()
        registry.gauge("depth").set(9)
        registry.merge(snap)
        assert registry.gauge("depth").value() == 5.0

    def test_histogram_merge_adds_buckets(self, registry):
        h = registry.histogram("lat", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        snap = registry.snapshot()
        registry.merge(snap)
        state = h.state()
        assert state.counts == [2, 2, 0]
        assert state.count == 4
        assert state.sum == pytest.approx(7.0)

    def test_merge_into_empty_registry(self, registry):
        registry.counter("ops_total").inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        other = MetricsRegistry()
        other.merge(registry.snapshot())
        assert other.counter("ops_total").value() == 2.0
        assert other.histogram("lat", buckets=(1.0,)).state().count == 1

    def test_snapshot_is_json_safe(self, registry):
        registry.counter("ops_total").inc(kind="a")
        registry.histogram("lat").observe(3.0)
        round_tripped = json.loads(json.dumps(registry.snapshot()))
        other = MetricsRegistry()
        other.merge(round_tripped)
        assert other.counter("ops_total").value(kind="a") == 1.0


class TestExporters:
    def test_prometheus_buckets_are_cumulative(self, registry):
        h = registry.histogram("lat", help="latency", unit="ms",
                               buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        h.observe(100.0)
        text = to_prometheus(registry)
        assert '# TYPE lat histogram' in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="5"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text
        assert "lat_sum 103.5" in text

    def test_prometheus_escapes_label_values(self, registry):
        registry.counter("c_total").inc(path='a"b\\c')
        text = to_prometheus(registry)
        assert 'path="a\\"b\\\\c"' in text

    def test_json_export_is_sorted_and_parseable(self, registry):
        registry.counter("b_total").inc()
        registry.counter("a_total").inc()
        payload = json.loads(to_json(registry))
        assert list(payload) == sorted(payload)
        assert payload["a_total"]["kind"] == "counter"
