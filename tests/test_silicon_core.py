"""Core and Chip behaviour."""

import numpy as np
import pytest

from repro.silicon.core import Chip, Core
from repro.silicon.defects import MachineCheckDefect, StuckBitDefect
from repro.silicon.environment import NOMINAL
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.units import Op


class TestHealthyCore:
    def test_execute_returns_golden(self, healthy_core):
        assert healthy_core.execute(Op.ADD, 2, 3) == 5

    def test_counts_ops(self, healthy_core):
        healthy_core.execute(Op.ADD, 1, 1)
        healthy_core.execute(Op.MUL, 2, 2)
        assert healthy_core.ops_executed == 2

    def test_no_corruptions_ever(self, healthy_core):
        for i in range(500):
            healthy_core.execute(Op.XOR, i, i * 3)
        assert healthy_core.corruptions_induced == 0

    def test_is_not_mercurial(self, healthy_core):
        assert not healthy_core.is_mercurial
        assert not healthy_core.is_defective_now()

    def test_golden_matches_execute(self, healthy_core):
        assert healthy_core.golden(Op.MUL, 6, 7) == healthy_core.execute(
            Op.MUL, 6, 7
        )


class TestMercurialCore:
    def _bad_core(self, rate=1.0):
        return Core(
            "t/bad",
            defects=[StuckBitDefect("d", bit=0, base_rate=rate, ops=(Op.ADD,))],
            rng=np.random.default_rng(0),
        )

    def test_corruption_counted(self):
        core = self._bad_core()
        assert core.execute(Op.ADD, 2, 2) == 5
        assert core.corruptions_induced == 1

    def test_untargeted_ops_clean(self):
        core = self._bad_core()
        assert core.execute(Op.MUL, 2, 2) == 4
        assert core.corruptions_induced == 0

    def test_effective_rate_reflects_defect(self):
        core = self._bad_core(rate=1e-3)
        assert core.effective_rate(Op.ADD) == pytest.approx(1e-3)
        assert core.effective_rate(Op.MUL) == 0.0

    def test_machine_check_propagates_and_counts(self):
        defect = MachineCheckDefect("d", base_rate=1.0, ops=(Op.LOAD,))
        core = Core("t/mce", defects=[defect], rng=np.random.default_rng(0))
        with pytest.raises(MachineCheckError):
            core.execute(Op.LOAD, 1)
        assert core.machine_checks_raised == 1

    def test_offline_core_refuses_work(self):
        core = self._bad_core()
        core.set_online(False)
        with pytest.raises(CoreOfflineError):
            core.execute(Op.ADD, 1, 1)

    def test_reset_counters(self):
        core = self._bad_core()
        core.execute(Op.ADD, 1, 1)
        core.reset_counters()
        assert core.ops_executed == 0
        assert core.corruptions_induced == 0

    def test_age_cannot_decrease(self, healthy_core):
        with pytest.raises(ValueError):
            healthy_core.advance_age(-1.0)


class TestChip:
    def test_build_places_defects_on_one_core(self):
        chip = Chip.build(
            "m0", n_cores=8,
            defects_by_core={3: [StuckBitDefect("d", bit=1, ops=(Op.ADD,))]},
        )
        assert len(chip) == 8
        assert [c.core_id for c in chip.mercurial_cores] == ["m0/c03"]

    def test_core_ids_are_stable(self):
        chip = Chip.build("m1", n_cores=4)
        assert [c.core_id for c in chip] == [
            "m1/c00", "m1/c01", "m1/c02", "m1/c03"
        ]

    def test_environment_propagates(self):
        chip = Chip.build("m2", n_cores=2)
        hot = NOMINAL.with_temperature(90.0)
        chip.set_environment(hot)
        assert all(core.env.temperature_c == 90.0 for core in chip)

    def test_advance_age_propagates(self):
        chip = Chip.build("m3", n_cores=2)
        chip.advance_age(10.0)
        assert all(core.age_days == 10.0 for core in chip)

    def test_empty_chip_rejected(self):
        with pytest.raises(ValueError):
            Chip([])

    def test_distinct_rngs_per_core(self):
        """Cores must not share random streams (defect independence)."""
        chip = Chip.build("m4", n_cores=2, seed=9)
        a = chip.cores[0].rng.integers(2**32)
        b = chip.cores[1].rng.integers(2**32)
        assert a != b
