"""Quarantine policy engine."""

import pytest

from repro.core.policy import Action, PolicyConfig, QuarantinePolicy


def make_policy(**overrides):
    defaults = dict(
        monitor_threshold=1.0,
        retest_threshold=2.0,
        quarantine_threshold=6.0,
        require_confession_below=6.0,
        machine_core_limit=2,
        max_quarantined_fraction=0.5,
    )
    defaults.update(overrides)
    return QuarantinePolicy(PolicyConfig(**defaults), fleet_cores=100)


class TestDecisions:
    def test_background_noise_no_action(self):
        assert make_policy().decide("m0/c0", 0.5).action is Action.NONE

    def test_weak_signal_monitored(self):
        assert make_policy().decide("m0/c0", 1.5).action is Action.MONITOR

    def test_suspicious_core_retested(self):
        assert make_policy().decide("m0/c0", 3.0).action is Action.RETEST

    def test_confession_quarantines_at_any_score(self):
        decision = make_policy().decide("m0/c0", 2.5, confessed=True)
        assert decision.action is Action.QUARANTINE_CORE
        assert "confession" in decision.reason

    def test_high_score_needs_no_confession(self):
        decision = make_policy().decide("m0/c0", 10.0)
        assert decision.action is Action.QUARANTINE_CORE

    def test_below_confession_bar_without_confession_retests(self):
        decision = make_policy(
            quarantine_threshold=6.0, require_confession_below=6.0
        ).decide("m0/c0", 5.0)
        assert decision.action is Action.RETEST

    def test_already_quarantined_is_noop(self):
        policy = make_policy()
        policy.decide("m0/c0", 10.0)
        assert policy.decide("m0/c0", 10.0).action is Action.NONE


class TestMachineEscalation:
    def test_multiple_bad_cores_pull_the_machine(self):
        policy = make_policy(machine_core_limit=2)
        first = policy.decide("m7/c0", 10.0)
        second = policy.decide("m7/c1", 10.0)
        assert first.action is Action.QUARANTINE_CORE
        assert second.action is Action.QUARANTINE_MACHINE
        assert "m7" in policy.quarantined_machines

    def test_cores_on_quarantined_machine_are_noop(self):
        policy = make_policy(machine_core_limit=1)
        policy.decide("m7/c0", 10.0)
        assert policy.decide("m7/c1", 10.0).action is Action.NONE


class TestCapacityGuard:
    def test_guard_blocks_quarantine_when_budget_spent(self):
        # budget: 1% of 100 cores = 1 core
        policy = QuarantinePolicy(
            PolicyConfig(max_quarantined_fraction=0.01), fleet_cores=100
        )
        first = policy.decide("m0/c0", 10.0)
        assert first.action is Action.QUARANTINE_CORE
        second = policy.decide("m1/c0", 10.0)
        assert second.action is Action.RETEST
        assert "capacity guard" in second.reason


class TestRelease:
    def test_release_reopens_capacity(self):
        policy = QuarantinePolicy(
            PolicyConfig(max_quarantined_fraction=0.01), fleet_cores=100
        )
        policy.decide("m0/c0", 10.0)
        policy.release("m0/c0")
        assert policy.decide("m1/c0", 10.0).action is Action.QUARANTINE_CORE

    def test_release_unknown_core_is_noop(self):
        make_policy().release("never/there")


class TestConfigValidation:
    def test_thresholds_must_be_ordered(self):
        with pytest.raises(ValueError):
            PolicyConfig(monitor_threshold=5.0, retest_threshold=2.0)

    def test_machine_limit_positive(self):
        with pytest.raises(ValueError):
            PolicyConfig(machine_core_limit=0)

    def test_fraction_in_range(self):
        with pytest.raises(ValueError):
            PolicyConfig(max_quarantined_fraction=0.0)

    def test_machine_of_convention(self):
        assert QuarantinePolicy.machine_of("m0017/c05") == "m0017"
