"""Symptom taxonomy and classification."""

import pytest

from repro.core.taxonomy import Symptom, classify, risk_ordered


class TestRiskOrdering:
    def test_four_classes_in_paper_order(self):
        order = risk_ordered()
        assert order == (
            Symptom.WRONG_ANSWER_IMMEDIATE,
            Symptom.MACHINE_CHECK,
            Symptom.WRONG_ANSWER_LATE,
            Symptom.WRONG_ANSWER_UNDETECTED,
        )

    def test_risk_rank_is_one_based_and_increasing(self):
        ranks = [s.risk_rank for s in risk_ordered()]
        assert ranks == [1, 2, 3, 4]

    def test_undetected_is_riskiest(self):
        assert Symptom.WRONG_ANSWER_UNDETECTED.risk_rank == 4

    def test_retryability(self):
        assert Symptom.WRONG_ANSWER_IMMEDIATE.retryable
        assert Symptom.MACHINE_CHECK.retryable
        assert not Symptom.WRONG_ANSWER_LATE.retryable
        assert not Symptom.WRONG_ANSWER_UNDETECTED.retryable


class TestClassify:
    def test_machine_check_dominates(self):
        assert classify(detected=True, machine_check=True,
                        detection_latency=0.0) is Symptom.MACHINE_CHECK

    def test_undetected(self):
        assert classify(detected=False) is Symptom.WRONG_ANSWER_UNDETECTED

    def test_immediate_within_retry_window(self):
        symptom = classify(detected=True, detection_latency=1.0, retry_window=5.0)
        assert symptom is Symptom.WRONG_ANSWER_IMMEDIATE

    def test_late_beyond_retry_window(self):
        symptom = classify(detected=True, detection_latency=10.0, retry_window=5.0)
        assert symptom is Symptom.WRONG_ANSWER_LATE

    def test_detected_requires_latency(self):
        with pytest.raises(ValueError):
            classify(detected=True)
