"""Operating points, DVFS coupling, stress points."""

import pytest

from repro.silicon.environment import DvfsTable, NOMINAL, OperatingPoint, stress_points


class TestOperatingPoint:
    def test_nominal_values(self):
        assert NOMINAL.frequency_ghz == 3.0
        assert NOMINAL.voltage_v == 1.0

    def test_with_temperature_is_functional(self):
        hot = NOMINAL.with_temperature(95.0)
        assert hot.temperature_c == 95.0
        assert NOMINAL.temperature_c == 60.0  # original untouched

    def test_scaled_changes_f_and_v(self):
        point = NOMINAL.scaled(frequency_ghz=1.2, voltage_v=0.7)
        assert point.frequency_ghz == 1.2
        assert point.voltage_v == 0.7

    def test_frozen(self):
        with pytest.raises(Exception):
            NOMINAL.frequency_ghz = 5.0  # type: ignore[misc]


class TestDvfsTable:
    def test_default_ladder_couples_f_and_v(self):
        table = DvfsTable()
        frequencies = [f for f, _ in table.states]
        voltages = [v for _, v in table.states]
        assert frequencies == sorted(frequencies)
        assert voltages == sorted(voltages)  # lower f implies lower V

    def test_nominal_index_hits_3ghz(self):
        table = DvfsTable()
        f, _ = table.state(table.nominal_index)
        assert f == pytest.approx(3.0)

    def test_operating_point_carries_temperature(self):
        table = DvfsTable()
        point = table.operating_point(0, temperature_c=80.0)
        assert point.temperature_c == 80.0
        assert point.frequency_ghz == table.states[0][0]

    def test_sweep_covers_all_states_and_temps(self):
        table = DvfsTable()
        points = list(table.sweep(temperatures_c=(40.0, 80.0)))
        assert len(points) == len(table.states) * 2

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            DvfsTable(states=[])


class TestStressPoints:
    def test_stress_points_leave_the_envelope(self):
        table = DvfsTable()
        top_f, top_v = table.states[-1]
        points = stress_points(table)
        assert any(p.voltage_v < top_v and p.frequency_ghz == top_f for p in points)
        assert any(p.temperature_c >= 90.0 for p in points)
        assert any(p.temperature_c <= 20.0 for p in points)
