"""Integration: the experiment runners reproduce the paper's shapes.

These run the same code as the benchmarks at reduced scale and assert
the qualitative claims (who wins, direction, bands) rather than
absolute numbers — the reproduction contract from DESIGN.md §3.
"""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    run_abft,
    run_aes_case,
    run_aging,
    run_fvt,
    run_isolation,
    run_mitigation_ladder,
    run_propagation,
    run_rate_spread,
    run_redundancy_cost,
    run_report_concentration,
    run_screening_tradeoff,
    run_symptoms,
)


class TestRegistry:
    def test_all_twenty_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "F1", "E1", "E2", "E3", "E4", "E5", "E6", "E7",
            "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15",
            "E16", "E17", "E18", "E19",
        }

    def test_every_entry_has_title_and_runner(self):
        for eid, (title, runner) in EXPERIMENTS.items():
            assert title and callable(runner)


class TestE3AesCase:
    def test_all_five_observations_hold(self):
        result = run_aes_case()
        assert result["ciphertext_differs"]
        assert result["same_core_roundtrip_identity"]
        assert result["cross_core_garbage"]
        assert result["corpus_catches"]
        assert result["checked_cipher_catches"]


class TestE4Propagation:
    def test_bit_flips_at_single_position(self):
        result = run_propagation()
        assert result["n_flips"] > 0
        assert len(result["flip_positions"]) == 1  # one fixed position

    def test_only_defective_replica_errs(self):
        result = run_propagation()
        errors = result["replica_errors"]
        assert errors[0] == 0.0 and errors[2] == 0.0 and errors[1] > 0.0

    def test_gc_loses_live_blocks(self):
        result = run_propagation()
        assert result["gc_lost_blocks"] > 0
        assert result["late_detected_losses"] > 0


class TestE5RedundancyCost:
    def test_factors_match_section3(self):
        result = run_redundancy_cost()
        assert result["dmr_factor"] == pytest.approx(2.0, rel=0.05)
        assert result["tmr_factor"] == pytest.approx(3.0, rel=0.05)


class TestE6RateSpread:
    def test_many_orders_of_magnitude(self):
        result = run_rate_spread(n_defects=150)
        assert result["spread_orders"] >= 3.0  # "many orders of magnitude"


class TestE7Fvt:
    def test_frequency_sensitive_rate_rises_with_frequency(self):
        result = run_fvt()
        assert result["freq_rates"] == sorted(result["freq_rates"])

    def test_voltage_defect_shows_low_frequency_anomaly(self):
        result = run_fvt()
        rates = result["volt_rates"]
        assert rates == sorted(rates, reverse=True)  # worse at LOW freq

    def test_shared_logic_hits_both_families(self):
        result = run_fvt()
        assert result["copy_corruptions"] > 0
        assert result["vector_corruptions"] > 0


class TestE8Triage:
    def test_roughly_half_confirmed(self):
        result = run_triage_small()
        assert 0.3 <= result["confirmed_fraction"] <= 0.7


def run_triage_small():
    from repro.analysis.experiments import run_triage

    return run_triage(n_incidents=120, seed=23)


class TestE9Screening:
    def test_offline_catches_what_online_misses(self):
        result = run_screening_tradeoff(n_rates=40)
        assert not result["online_caught_gated"]
        assert result["offline_caught_gated"]

    def test_faster_cadence_detects_sooner(self):
        result = run_screening_tradeoff(n_rates=40)
        by_label = dict(zip(result["labels"], result["frontier"]))
        assert by_label["online daily"]["median_days_to_detect"] < \
            by_label["online weekly"]["median_days_to_detect"]

    def test_cost_ordering(self):
        result = run_screening_tradeoff(n_rates=40)
        by_label = dict(zip(result["labels"], result["frontier"]))
        assert by_label["online daily"]["compute_cost_fraction"] > \
            by_label["online weekly"]["compute_cost_fraction"]


class TestE10Isolation:
    def test_core_quarantine_strands_far_less(self):
        result = run_isolation(n_machines=20)
        assert result["core_stranded"] < result["machine_stranded"] / 5
        assert result["machine_healthy_stranded"] > 0

    def test_safe_tasks_reclaim_capacity(self):
        result = run_isolation(n_machines=20)
        assert result["safe_task_placements"] > 0


class TestE11MitigationLadder:
    def test_redundancy_eliminates_escapes(self):
        result = run_mitigation_ladder(n_units=25)
        assert result["escaped_unprotected"] > 0
        assert result["escaped_dmr"] == 0
        assert result["escaped_tmr"] == 0


class TestE12Abft:
    def test_vanilla_wrong_abft_never_silent(self):
        result = run_abft(n_trials=6)
        assert result["vanilla_wrong"] > 0
        assert result["abft_silent_wrong"] == 0
        assert result["plain_sort_wrong"]
        assert result["resilient_sort_ok"]
        assert result["lu_detections"] > 0


class TestE13Reports:
    def test_concentrated_core_is_top_suspect(self):
        result = run_report_concentration()
        assert result["top_suspect"] == "m0042/c07"
        assert "m0042/c07" in result["candidates"]


class TestE14Aging:
    def test_model_and_empirical_cdf_agree(self):
        result = run_aging(n_defects=2000)
        assert result["model_cdf_365"] == pytest.approx(0.5, abs=0.1)

    def test_escalation_monotone(self):
        result = run_aging(n_defects=500)
        assert result["escalation"] == sorted(result["escalation"])

    def test_censoring_reported(self):
        result = run_aging(n_defects=2000)
        assert 0.0 < result["censored_fraction_730"] < 0.6


class TestE2Symptoms:
    def test_observes_multiple_symptom_classes(self):
        result = run_symptoms(n_cores=20, seed=3)
        nonzero = [s for s, c in result["counts"].items() if c > 0]
        assert len(nonzero) >= 2

    def test_rendered_table_lists_risk_ranks(self):
        result = run_symptoms(n_cores=10, seed=3)
        assert "(1)" in result["rendered"] and "(4)" in result["rendered"]
