"""Event log analytics."""

from repro.core.events import CeeEvent, EventKind, EventLog, Reporter


def _event(t, machine="m0", core="m0/c0", kind=EventKind.CRASH,
           reporter=Reporter.AUTOMATED, app=None):
    return CeeEvent(
        time_days=t, machine_id=machine, core_id=core, kind=kind,
        reporter=reporter, application=app,
    )


class TestEventLog:
    def test_append_and_len(self):
        log = EventLog()
        log.append(_event(1.0))
        log.extend([_event(2.0), _event(3.0)])
        assert len(log) == 3

    def test_filter_by_kind(self):
        log = EventLog()
        log.append(_event(1.0, kind=EventKind.CRASH))
        log.append(_event(2.0, kind=EventKind.MACHINE_CHECK))
        assert len(log.filter(kind=EventKind.CRASH)) == 1

    def test_filter_by_reporter(self):
        log = EventLog()
        log.append(_event(1.0, reporter=Reporter.HUMAN))
        log.append(_event(2.0, reporter=Reporter.AUTOMATED))
        assert len(log.filter(reporter=Reporter.HUMAN)) == 1

    def test_filter_time_window_half_open(self):
        log = EventLog()
        for t in (0.0, 5.0, 10.0):
            log.append(_event(t))
        assert len(log.filter(since=5.0, until=10.0)) == 1

    def test_filter_with_predicate(self):
        log = EventLog()
        log.append(_event(1.0, core="m0/c1"))
        log.append(_event(2.0, core="m0/c2"))
        selected = log.filter(predicate=lambda e: e.core_id == "m0/c2")
        assert len(selected) == 1

    def test_per_core_counts_skip_unattributed(self):
        log = EventLog()
        log.append(_event(1.0, core="m0/c1"))
        log.append(_event(2.0, core=None))
        counts = log.per_core_counts()
        assert counts == {"m0/c1": 1}

    def test_per_machine_counts(self):
        log = EventLog()
        log.append(_event(1.0, machine="m1"))
        log.append(_event(2.0, machine="m1"))
        log.append(_event(3.0, machine="m2"))
        assert log.per_machine_counts()["m1"] == 2

    def test_tail(self):
        log = EventLog()
        log.append(_event(1.0))
        log.append(_event(2.0))
        assert [e.time_days for e in log.tail(1)] == [2.0]


class TestRateTimeline:
    def test_buckets_and_normalization(self):
        log = EventLog()
        for t in (1.0, 2.0, 15.0):
            log.append(_event(t))
        series = log.rate_timeline(
            bucket_days=10.0, horizon_days=20.0, machines=10
        )
        assert len(series) == 2
        assert series[0][1] == 2 / (10.0 * 10)
        assert series[1][1] == 1 / (10.0 * 10)

    def test_kind_filter(self):
        log = EventLog()
        log.append(_event(1.0, kind=EventKind.CRASH))
        log.append(_event(1.0, kind=EventKind.USER_REPORT))
        series = log.rate_timeline(
            bucket_days=10.0, horizon_days=10.0,
            kinds={EventKind.USER_REPORT},
        )
        assert series[0][1] == 1 / 10.0

    def test_negative_time_events_excluded(self):
        """Warmup events fall outside the reported window."""
        log = EventLog()
        log.append(_event(-5.0))
        log.append(_event(5.0))
        series = log.rate_timeline(bucket_days=10.0, horizon_days=10.0)
        assert series[0][1] == 1 / 10.0
