"""Black-box defect characterization."""

import numpy as np
import pytest

from repro.detection.characterize import (
    characterize,
    probe_operations,
    recover_trigger_gate,
    synthesize_regression_test,
)
from repro.silicon.core import Core
from repro.silicon.defects import (
    MachineCheckDefect,
    OperandPatternDefect,
    SboxPermutationDefect,
    StuckBitDefect,
)
from repro.silicon.units import FunctionalUnit, Op


def _healthy():
    return Core("char/h", rng=np.random.default_rng(0))


def _gated(mask=0x30, value=0x20, seed=0):
    return Core(
        "char/gated",
        defects=[OperandPatternDefect("d", mask=mask, value=value,
                                      error=1 << 9, base_rate=1.0,
                                      ops=(Op.MUL,))],
        rng=np.random.default_rng(seed),
    )


class TestProbing:
    def test_healthy_core_shows_no_failures(self):
        findings = probe_operations(
            _healthy(), np.random.default_rng(0), probes_per_op=100
        )
        assert all(f.failures == 0 and f.machine_checks == 0
                   for f in findings)

    def test_stuck_bit_implicates_only_its_unit(self):
        core = Core(
            "char/stuck",
            defects=[StuckBitDefect("d", bit=7, base_rate=0.2,
                                    unit=FunctionalUnit.MUL_DIV)],
            rng=np.random.default_rng(1),
        )
        profile = characterize(core, probes_per_op=200)
        assert profile.implicated_units == frozenset({FunctionalUnit.MUL_DIV})

    def test_machine_check_defect_counted(self):
        core = Core(
            "char/mce",
            defects=[MachineCheckDefect("d", base_rate=0.3, ops=(Op.ADD,))],
            rng=np.random.default_rng(2),
        )
        findings = probe_operations(
            core, np.random.default_rng(0), probes_per_op=100,
            ops=(Op.ADD,),
        )
        assert findings[0].machine_checks > 0

    def test_sbox_defect_found_by_exhaustion_scale_probing(self):
        core = Core(
            "char/sbox", defects=[SboxPermutationDefect("d")],
            rng=np.random.default_rng(3),
        )
        profile = characterize(core, probes_per_op=600)
        assert FunctionalUnit.CRYPTO in profile.implicated_units


class TestGateRecovery:
    def test_recovers_exact_mask_and_value(self):
        core = _gated(mask=0x30, value=0x20)
        profile = characterize(core, probes_per_op=600)
        assert profile.trigger_mask == 0x30
        assert profile.trigger_value == 0x20

    def test_no_gate_for_random_defect(self):
        core = Core(
            "char/random",
            defects=[StuckBitDefect("d", bit=3, base_rate=0.15,
                                    unit=FunctionalUnit.ALU)],
            rng=np.random.default_rng(4),
        )
        profile = characterize(core, probes_per_op=200)
        assert profile.trigger_mask is None

    def test_empty_failing_operands_returns_none(self):
        assert recover_trigger_gate(
            _healthy(), Op.MUL, [], np.random.default_rng(0)
        ) is None


class TestRegressionSynthesis:
    def test_synthesized_test_is_decisive(self):
        core = _gated()
        profile = characterize(core, probes_per_op=600)
        test = synthesize_regression_test(profile)
        assert test is not None
        assert not test.run(core)       # catches the defective core
        assert test.run(_healthy())     # passes a healthy one

    def test_gated_test_catches_reliably_where_probing_was_lucky(self):
        """The whole point: probing hits the gate ~6% of the time, the
        synthesized test hits it 100% of the time."""
        core = _gated()
        profile = characterize(core, probes_per_op=600)
        test = synthesize_regression_test(profile, n_vectors=16)
        for _ in range(5):
            assert not test.run(core)

    def test_profile_without_failures_yields_none(self):
        profile = characterize(_healthy(), probes_per_op=50)
        assert synthesize_regression_test(profile) is None

    def test_render_includes_gate(self):
        profile = characterize(_gated(), probes_per_op=600)
        text = profile.render()
        assert "operand gate" in text and "0x30" in text
