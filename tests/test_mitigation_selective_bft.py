"""Selective replication (§9) and quorum replication (§8)."""

import numpy as np
import pytest

from repro.mitigation.bft import QuorumError, QuorumReplicatedService
from repro.mitigation.selective import (
    SelectiveReplicator,
    Stage,
    full_tmr_baseline,
    impact_score,
    unprotected_baseline,
)
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op
from repro.workloads.base import WorkloadResult, digest_ints


def _work(seed: int, length: int = 60):
    def work(core) -> WorkloadResult:
        total = seed
        for value in range(length):
            total = core.execute(Op.ADD, total, value * seed + 1)
        return WorkloadResult(name=f"w{seed}", output_digest=digest_ints([total]))

    return work


def _bad_core(seed=0, rate=5e-3):
    return Core(
        "sel/bad",
        defects=[StuckBitDefect("d", bit=33, base_rate=rate,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )


def _pool(with_bad=True):
    pool = [Core(f"sel/c{i}", rng=np.random.default_rng(20 + i))
            for i in range(5)]
    if with_bad:
        pool[0] = _bad_core()
    return pool


def _stages(n=10, critical_every=5):
    return [
        Stage(
            name=f"s{i}",
            work=_work(i + 1),
            critical=(i % critical_every == 0),
            blast_radius=1000 if i % critical_every == 0 else 1,
        )
        for i in range(n)
    ]


class TestImpactAnalysis:
    def test_blast_radius_drives_score(self):
        wide = Stage("meta", _work(1), critical=None, blast_radius=100000)
        narrow = Stage("row", _work(2), critical=None, blast_radius=1)
        assert impact_score(wide) > impact_score(narrow)

    def test_threshold_classifies(self):
        replicator = SelectiveReplicator(_pool(False), criticality_threshold=2.0)
        assert replicator._is_critical(
            Stage("meta", _work(1), critical=None, blast_radius=1000)
        )
        assert not replicator._is_critical(
            Stage("row", _work(2), critical=None, blast_radius=1)
        )

    def test_annotation_overrides_analysis(self):
        replicator = SelectiveReplicator(_pool(False))
        assert replicator._is_critical(
            Stage("s", _work(1), critical=True, blast_radius=1)
        )
        assert not replicator._is_critical(
            Stage("s", _work(1), critical=False, blast_radius=10**9)
        )


class TestSelectiveReplication:
    def test_cost_between_unprotected_and_full_tmr(self):
        stages = _stages(10, critical_every=5)  # 2 of 10 critical
        replicator = SelectiveReplicator(_pool(False))
        replicator.run_pipeline(stages)
        cost = replicator.stats.cost_factor
        assert 1.0 < cost < 3.0
        assert replicator.stats.stages_replicated == 2

    def test_critical_stage_correct_despite_defective_pool_member(self):
        stages = _stages(10, critical_every=1)  # everything critical
        reference = [
            stage.work(Core("sel/ref", rng=np.random.default_rng(99)))
            for stage in stages
        ]
        replicator = SelectiveReplicator(_pool(with_bad=True))
        results = replicator.run_pipeline(stages)
        for result, expected in zip(results, reference):
            assert result.output_digest == expected.output_digest

    def test_baselines(self):
        stages = _stages(6, critical_every=2)
        _, tmr_executions = full_tmr_baseline(_pool(False), stages)
        assert tmr_executions == 18
        results = unprotected_baseline(
            Core("sel/solo", rng=np.random.default_rng(0)), stages
        )
        assert len(results) == 6

    def test_needs_three_cores(self):
        with pytest.raises(ValueError):
            SelectiveReplicator(_pool(False)[:2])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            SelectiveReplicator([])

    def test_impact_score_exactly_at_threshold_is_critical(self):
        # impact_score = log10(blast_radius + 1): radius 9 lands
        # exactly on 1.0, the default threshold — ">=" means the
        # boundary stage IS replicated (fail-safe for ties).
        replicator = SelectiveReplicator(_pool(False),
                                         criticality_threshold=1.0)
        at_boundary = Stage(name="boundary", work=_work(3), blast_radius=9)
        assert impact_score(at_boundary) == pytest.approx(1.0)
        replicator.run_stage(at_boundary)
        assert replicator.stats.stages_replicated == 1

        just_below = Stage(name="below", work=_work(4), blast_radius=8)
        assert impact_score(just_below) < 1.0
        replicator.run_stage(just_below)
        assert replicator.stats.stages_replicated == 1
        assert replicator.stats.single_executions == 1

    def test_cost_factor_with_zero_replicated_stages(self):
        replicator = SelectiveReplicator(_pool(False))
        # Before anything runs the factor is the defined neutral 1.0,
        # not a division by zero.
        assert replicator.stats.cost_factor == 1.0
        for i in range(4):
            replicator.run_stage(
                Stage(name=f"cheap{i}", work=_work(i + 1), critical=False)
            )
        assert replicator.stats.stages_replicated == 0
        assert replicator.stats.cost_factor == 1.0


class TestQuorumService:
    def _service(self, mercurial_indices=(1,), f=1, rate=1.0):
        cores = []
        for index in range(3 * f + 1):
            defects = ()
            if index in mercurial_indices:
                defects = [
                    StuckBitDefect("d", bit=19, base_rate=rate,
                                   unit=FunctionalUnit.ALU)
                ]
            cores.append(
                Core(f"bft/r{index}", defects=defects,
                     rng=np.random.default_rng(index))
            )
        return QuorumReplicatedService(cores, f=f)

    @staticmethod
    def _incr(core, state):
        state["x"] = core.execute(Op.ADD, state.get("x", 0), 7)
        return state

    def test_healthy_service_commits(self):
        service = self._service(mercurial_indices=())
        committed = service.submit(self._incr)
        assert committed == {"x": 7}
        assert service.stats.dissents == 0

    def test_one_mercurial_replica_outvoted(self):
        service = self._service(mercurial_indices=(1,))
        for step in range(5):
            committed = service.submit(self._incr)
        assert committed["x"] == 35  # always the honest answer
        assert service.stats.dissents == 5

    def test_cost_factor_is_n(self):
        service = self._service(mercurial_indices=())
        service.submit(self._incr)
        assert service.stats.cost_factor == 4.0  # 3f+1 with f=1

    def test_dissent_recidivism_identifies_replica(self):
        service = self._service(mercurial_indices=(2,))
        for _ in range(4):
            service.submit(self._incr)
        assert service.suspect_replicas() == [2]

    def test_too_many_faulty_raises(self):
        # f=1 service with 2 *identically* wrong replicas: their shared
        # digest ties the honest pair at 2-2; quorum still commits the
        # larger-or-equal certificate, which may be the WRONG one —
        # so use 3 distinctly-wrong replicas to break quorum entirely.
        cores = [
            Core(
                f"bft/b{index}",
                defects=[StuckBitDefect("d", bit=10 + index, base_rate=1.0,
                                        unit=FunctionalUnit.ALU)],
                rng=np.random.default_rng(index),
            )
            for index in range(3)
        ] + [Core("bft/h", rng=np.random.default_rng(9))]
        service = QuorumReplicatedService(cores, f=1)
        with pytest.raises(QuorumError):
            service.submit(self._incr)

    def test_replica_count_validated(self):
        with pytest.raises(ValueError):
            QuorumReplicatedService(
                [Core(f"x{i}", rng=np.random.default_rng(i)) for i in range(3)],
                f=1,
            )

    def test_machine_check_replica_abstains(self):
        from repro.silicon.defects import MachineCheckDefect

        cores = [Core(f"bft/m{i}", rng=np.random.default_rng(i))
                 for i in range(4)]
        cores[3] = Core(
            "bft/mce",
            defects=[MachineCheckDefect("d", base_rate=1.0, ops=(Op.ADD,))],
            rng=np.random.default_rng(3),
        )
        service = QuorumReplicatedService(cores, f=1)
        committed = service.submit(self._incr)
        assert committed == {"x": 7}
