"""Shared fixtures: healthy cores, defective cores, pools."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.silicon.core import Core


@pytest.fixture(autouse=True)
def _reset_obs():
    """Keep the process-global obs registry from leaking across tests."""
    yield
    obs.metrics.reset()
    obs.tracer.reset()


@pytest.fixture
def healthy_core() -> Core:
    return Core("test/h0", rng=np.random.default_rng(0))


@pytest.fixture
def reference_core() -> Core:
    return Core("test/ref", rng=np.random.default_rng(1))


@pytest.fixture
def healthy_pool() -> list[Core]:
    return [
        Core(f"test/p{i}", rng=np.random.default_rng(10 + i)) for i in range(6)
    ]


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
