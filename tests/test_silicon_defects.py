"""Defect models: targeting, rates, corruption semantics."""

import numpy as np
import pytest

from repro.silicon.aging import AgingProfile
from repro.silicon.core import Core
from repro.silicon.defects import (
    AtomicsDefect,
    MachineCheckDefect,
    OperandPatternDefect,
    SboxPermutationDefect,
    SharedLogicDefect,
    StuckBitDefect,
    flip_bit,
    resolve_target_ops,
)
from repro.silicon.environment import NOMINAL
from repro.silicon.errors import MachineCheckError
from repro.silicon.golden import AES_INV_SBOX, AES_SBOX
from repro.silicon.sensitivity import FrequencySensitivity
from repro.silicon.units import FunctionalUnit, LogicBlock, Op, UNIT_OPS


class TestTargetResolution:
    def test_explicit_ops(self):
        assert resolve_target_ops(ops=(Op.ADD, Op.SUB)) == {Op.ADD, Op.SUB}

    def test_unit_expands_to_all_unit_ops(self):
        assert resolve_target_ops(unit=FunctionalUnit.MUL_DIV) == set(
            UNIT_OPS[FunctionalUnit.MUL_DIV]
        )

    def test_block_expands_to_crossing_ops(self):
        ops = resolve_target_ops(block=LogicBlock.SHUFFLE_NETWORK)
        assert Op.COPY in ops and Op.VXOR in ops

    def test_exactly_one_spec_required(self):
        with pytest.raises(ValueError):
            resolve_target_ops()
        with pytest.raises(ValueError):
            resolve_target_ops(ops=(Op.ADD,), unit=FunctionalUnit.ALU)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            resolve_target_ops(ops=("bogus",))


class TestStuckBit:
    def test_flip_bit_helper(self):
        assert flip_bit(0, 5) == 32
        assert flip_bit(32, 5) == 0

    def test_deterministic_flip_at_rate_one(self, rng):
        defect = StuckBitDefect("d", bit=3, base_rate=1.0, ops=(Op.ADD,))
        result = defect.apply(Op.ADD, (1, 1), 2, NOMINAL, 0.0, rng)
        assert result == 2 ^ 8

    def test_set_mode_forces_bit(self, rng):
        defect = StuckBitDefect("d", bit=0, mode="set", base_rate=1.0, ops=(Op.ADD,))
        assert defect.apply(Op.ADD, (1, 1), 2, NOMINAL, 0.0, rng) == 3

    def test_clear_mode_clears_bit(self, rng):
        defect = StuckBitDefect("d", bit=1, mode="clear", base_rate=1.0, ops=(Op.ADD,))
        assert defect.apply(Op.ADD, (1, 1), 2, NOMINAL, 0.0, rng) == 0

    def test_untargeted_op_untouched(self, rng):
        defect = StuckBitDefect("d", bit=3, base_rate=1.0, ops=(Op.ADD,))
        assert defect.apply(Op.MUL, (2, 3), 6, NOMINAL, 0.0, rng) == 6

    def test_vector_result_corrupts_one_lane(self, rng):
        defect = StuckBitDefect(
            "d", bit=0, base_rate=1.0, unit=FunctionalUnit.VECTOR
        )
        result = defect.apply(Op.VADD, ((1, 1), (1, 1)), (2, 2), NOMINAL, 0.0, rng)
        assert sorted(result) in ([2, 3], [3, 3])  # at least one lane flipped
        assert result != (2, 2)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            StuckBitDefect("d", bit=3, mode="wobble")

    def test_invalid_bit_rejected(self):
        with pytest.raises(ValueError):
            StuckBitDefect("d", bit=64)


class TestSboxPermutation:
    def test_swapped_entry_reads_other_entry(self, rng):
        defect = SboxPermutationDefect("d", swaps=((0x10, 0x20),))
        out = defect.apply(Op.SBOX, (0x10,), AES_SBOX[0x10], NOMINAL, 0.0, rng)
        assert out == AES_SBOX[0x20]

    def test_unswapped_entry_untouched(self, rng):
        defect = SboxPermutationDefect("d", swaps=((0x10, 0x20),))
        out = defect.apply(Op.SBOX, (0x33,), AES_SBOX[0x33], NOMINAL, 0.0, rng)
        assert out == AES_SBOX[0x33]

    def test_defective_inverse_inverts_defective_forward(self, rng):
        """The self-inversion property at the primitive level."""
        defect = SboxPermutationDefect("d", swaps=((0x3A, 0xC5),))
        core = Core("t/c", defects=[defect], rng=rng)
        for value in range(256):
            forward = core.execute(Op.SBOX, value)
            assert core.execute(Op.INV_SBOX, forward) == value

    def test_healthy_inverse_does_not_invert_defective_forward(self, rng):
        defect = SboxPermutationDefect("d", swaps=((0x3A, 0xC5),))
        bad = Core("t/bad", defects=[defect], rng=rng)
        healthy = Core("t/good")
        forward = bad.execute(Op.SBOX, 0x3A)
        assert healthy.execute(Op.INV_SBOX, forward) != 0x3A

    def test_trigger_fraction_counts_swapped_entries(self):
        defect = SboxPermutationDefect("d", swaps=((1, 2), (3, 4)))
        assert defect.trigger_fraction(Op.SBOX) == pytest.approx(4 / 256)

    def test_overlapping_swaps_rejected(self):
        with pytest.raises(ValueError):
            SboxPermutationDefect("d", swaps=((1, 2), (2, 3)))

    def test_self_swap_rejected(self):
        with pytest.raises(ValueError):
            SboxPermutationDefect("d", swaps=((5, 5),))


class TestOperandPattern:
    def test_fires_only_on_matching_pattern(self, rng):
        defect = OperandPatternDefect(
            "d", mask=0xF0, value=0x40, error=1, base_rate=1.0, ops=(Op.MUL,)
        )
        hit = defect.apply(Op.MUL, (0x42, 0x45), 0x42 * 0x45, NOMINAL, 0.0, rng)
        assert hit == (0x42 * 0x45) ^ 1
        miss = defect.apply(Op.MUL, (0x52, 0x45), 0x52 * 0x45, NOMINAL, 0.0, rng)
        assert miss == 0x52 * 0x45

    def test_trigger_fraction_shrinks_with_mask_bits(self):
        narrow = OperandPatternDefect("d", mask=0xFF, value=0x42, ops=(Op.MUL,))
        wide = OperandPatternDefect("d", mask=0x3, value=0x3, ops=(Op.MUL,))
        assert narrow.trigger_fraction(Op.MUL) < wide.trigger_fraction(Op.MUL)


class TestSharedLogicDefect:
    def test_targets_both_copy_and_vector(self):
        defect = SharedLogicDefect("d", block=LogicBlock.SHUFFLE_NETWORK)
        assert defect.targets(Op.COPY)
        assert defect.targets(Op.VXOR)
        assert not defect.targets(Op.ADD)

    def test_corrupts_copy_lane(self, rng):
        defect = SharedLogicDefect(
            "d", block=LogicBlock.SHUFFLE_NETWORK, bit=2, base_rate=1.0
        )
        data = (0, 0, 0, 0)
        out = defect.apply(Op.COPY, (data,), data, NOMINAL, 0.0, rng)
        assert sum(out) == 4  # exactly one lane has bit 2 flipped


class TestAtomicsDefect:
    def test_cas_spurious_success(self, rng):
        defect = AtomicsDefect("d", base_rate=1.0)
        # current=5 != expected=0, but the broken CAS stores new anyway
        assert defect.apply(Op.CAS, (5, 0, 9), 5, NOMINAL, 0.0, rng) == 9

    def test_fetch_add_drops_addend(self, rng):
        defect = AtomicsDefect("d", base_rate=1.0)
        assert defect.apply(Op.FETCH_ADD, (10, 5), 15, NOMINAL, 0.0, rng) == 10

    def test_xchg_drops_store(self, rng):
        defect = AtomicsDefect("d", base_rate=1.0)
        assert defect.apply(Op.XCHG, (1, 2), 2, NOMINAL, 0.0, rng) == 1


class TestMachineCheckDefect:
    def test_raises_machine_check(self, rng):
        defect = MachineCheckDefect("d", base_rate=1.0)
        defect.bind_core("m0/c0")
        with pytest.raises(MachineCheckError) as excinfo:
            defect.apply(Op.LOAD, (1,), 1, NOMINAL, 0.0, rng)
        assert excinfo.value.core_id == "m0/c0"


class TestRates:
    def test_effective_rate_zero_for_untargeted_op(self):
        defect = StuckBitDefect("d", bit=1, base_rate=1e-3, ops=(Op.ADD,))
        assert defect.effective_rate(Op.MUL, NOMINAL, 0.0) == 0.0

    def test_effective_rate_scales_with_environment(self):
        defect = StuckBitDefect(
            "d", bit=1, base_rate=1e-6, ops=(Op.ADD,),
            sensitivity=FrequencySensitivity(factor_per_ghz=4.0),
        )
        hot = NOMINAL.scaled(frequency_ghz=3.5, voltage_v=1.1)
        assert defect.effective_rate(Op.ADD, hot, 0.0) > defect.effective_rate(
            Op.ADD, NOMINAL, 0.0
        )

    def test_effective_rate_zero_before_onset(self):
        defect = StuckBitDefect(
            "d", bit=1, base_rate=1e-3, ops=(Op.ADD,),
            aging=AgingProfile(onset_days=100.0),
        )
        assert defect.effective_rate(Op.ADD, NOMINAL, 50.0) == 0.0
        assert defect.effective_rate(Op.ADD, NOMINAL, 150.0) > 0.0

    def test_mean_rate_weights_by_mix(self):
        defect = StuckBitDefect("d", bit=1, base_rate=1e-3, ops=(Op.ADD,))
        mix_hit = {Op.ADD: 1.0}
        mix_half = {Op.ADD: 0.5, Op.MUL: 0.5}
        assert defect.mean_rate(mix_hit, NOMINAL, 0.0) == pytest.approx(
            2 * defect.mean_rate(mix_half, NOMINAL, 0.0)
        )

    def test_base_rate_must_be_probability(self):
        with pytest.raises(ValueError):
            StuckBitDefect("d", bit=1, base_rate=1.5)

    def test_wide_results_get_more_exposure(self):
        """A block copy has one corruption chance per lane."""
        defect = StuckBitDefect(
            "d", bit=1, base_rate=1e-2, unit=FunctionalUnit.LOAD_STORE
        )
        rng = np.random.default_rng(0)
        wide = (0,) * 64
        corrupted_wide = sum(
            defect.apply(Op.COPY, (wide,), wide, NOMINAL, 0.0, rng) != wide
            for _ in range(200)
        )
        corrupted_scalar = sum(
            defect.apply(Op.LOAD, (0,), 0, NOMINAL, 0.0, rng) != 0
            for _ in range(200)
        )
        assert corrupted_wide > corrupted_scalar * 5
