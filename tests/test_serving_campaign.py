"""Campaign-level behaviour: chaos schedule, hardening loop, determinism."""

from repro.core.events import EventKind
from repro.serving.campaign import (
    CampaignConfig,
    ServingCampaign,
    build_serving_fleet,
)
from repro.chaos import ChaosAction, ChaosKind, ChaosSchedule
from repro.serving.robustness import HardeningConfig

TICKS = 300


def _campaign(hardening, seed=3, chaos=True, onset_days=0.0):
    machines, bad_core_id = build_serving_fleet(
        onset_days=onset_days, seed=7
    )
    campaign = ServingCampaign(
        machines, CampaignConfig(ticks=TICKS), hardening, seed=seed
    )
    if chaos:
        victim = next(
            r.core_id for r in campaign.router.replicas
            if r.core_id != bad_core_id
        )
        campaign.chaos = ChaosSchedule.standard(
            bad_core_id, victim, TICKS, onset_age_days=onset_days or 400.0
        )
    return campaign, bad_core_id


class TestChaosSchedule:
    def test_due_fires_each_action_once_in_order(self):
        schedule = ChaosSchedule(
            [
                ChaosAction(10, ChaosKind.CRASH_CORE, "c0"),
                ChaosAction(5, ChaosKind.ACTIVATE_DEFECT, "c1"),
                ChaosAction(10, ChaosKind.TRAFFIC_BURST, magnitude=2.0),
            ]
        )
        assert schedule.due(4) == []
        first = schedule.due(5)
        assert [a.kind for a in first] == [ChaosKind.ACTIVATE_DEFECT]
        later = schedule.due(10)
        assert [a.kind for a in later] == [
            ChaosKind.CRASH_CORE, ChaosKind.TRAFFIC_BURST
        ]
        assert schedule.due(10) == []       # never hands an action out twice
        assert schedule.due(1000) == []

    def test_due_catches_up_over_skipped_ticks(self):
        schedule = ChaosSchedule(
            [ChaosAction(3, ChaosKind.CRASH_CORE, "c0")]
        )
        assert len(schedule.due(100)) == 1

    def test_reset_rearms_the_script(self):
        schedule = ChaosSchedule(
            [ChaosAction(1, ChaosKind.CRASH_CORE, "c0")]
        )
        assert len(schedule.due(1)) == 1
        schedule.reset()
        assert len(schedule.due(1)) == 1

    def test_standard_script_covers_all_fault_kinds(self):
        schedule = ChaosSchedule.standard("bad", "victim", 800)
        kinds = {a.kind for a in schedule.actions}
        assert kinds == set(ChaosKind)
        ticks = [a.at_tick for a in schedule.actions]
        assert ticks == sorted(ticks)
        assert all(0 < t < 800 for t in ticks)


class TestCampaignLoop:
    def test_unhardened_lets_corruption_escape(self):
        campaign, _ = _campaign(HardeningConfig.unhardened())
        card = campaign.run()
        assert card.corrupt_escapes > 0
        assert card.corrupt_caught == 0     # nobody is looking

    def test_hardened_catches_corruption_and_quarantines_bad_core(self):
        campaign, bad_core_id = _campaign(HardeningConfig.hardened())
        card = campaign.run()
        assert card.corrupt_escapes == 0
        assert card.corrupt_caught > 0
        assert card.breaker_trips > 0
        assert bad_core_id in card.quarantine_tick
        # The quarantined core is really out of the replica set...
        assert all(
            r.core_id != bad_core_id for r in campaign.router.replicas
        )
        # ...and the scheduler re-placed the replica on a spare, so the
        # service stays at full strength.
        assert len(campaign.router.live_replicas()) == (
            campaign.config.n_replicas
        )

    def test_breaker_trip_lands_in_event_log(self):
        campaign, bad_core_id = _campaign(HardeningConfig.hardened())
        campaign.run()
        trips = [
            e for e in campaign.events if e.kind is EventKind.BREAKER_TRIP
        ]
        assert trips
        assert any(e.core_id == bad_core_id for e in trips)
        assert all(e.application == "serving" for e in trips)

    def test_late_onset_defect_is_inert_until_chaos_activates_it(self):
        campaign, bad_core_id = _campaign(
            HardeningConfig.hardened(), onset_days=400.0
        )
        card = campaign.run()
        # Activation happens at ticks//4; every catch postdates it.
        catches = [
            e for e in campaign.events
            if e.kind is EventKind.APP_REPORT and e.core_id == bad_core_id
        ]
        assert card.corrupt_caught > 0
        assert catches
        activation_ms = (TICKS // 4) * campaign.config.tick_ms
        assert all(
            e.time_days * 86_400_000.0 >= activation_ms for e in catches
        )

    def test_availability_survives_chaos_when_hardened(self):
        campaign, _ = _campaign(HardeningConfig.hardened())
        card = campaign.run()
        assert card.availability > 0.9


class TestCampaignDeterminism:
    @staticmethod
    def _fingerprint(card):
        return (
            card.total_arrivals, card.ok, card.corrupt_escapes,
            card.corrupt_caught, card.retries, card.hedges,
            card.breaker_trips, dict(card.quarantine_tick),
            tuple(card.latencies_ms),
        )

    def test_same_seed_same_scorecard(self):
        first, _ = _campaign(HardeningConfig.hardened(), seed=11)
        second, _ = _campaign(HardeningConfig.hardened(), seed=11)
        assert self._fingerprint(first.run()) == (
            self._fingerprint(second.run())
        )

    def test_different_seed_different_traffic(self):
        first, _ = _campaign(HardeningConfig.hardened(), seed=11)
        second, _ = _campaign(HardeningConfig.hardened(), seed=12)
        assert self._fingerprint(first.run()) != (
            self._fingerprint(second.run())
        )
