"""Lock semantics workload."""

import numpy as np
import pytest

from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.silicon.defects import AtomicsDefect
from repro.silicon.units import Op
from repro.workloads.locking import locking_workload, run_locked_counter


class TestHealthyLocking:
    def test_counter_reaches_expected(self, healthy_core):
        shared, hung = run_locked_counter(healthy_core, n_threads=4, iterations=10)
        assert not hung
        assert shared.counter == 40
        assert shared.mutual_exclusion_violations == 0

    def test_single_thread(self, healthy_core):
        shared, hung = run_locked_counter(healthy_core, n_threads=1, iterations=5)
        assert shared.counter == 5 and not hung

    def test_workload_reports_clean(self, healthy_core):
        result = locking_workload(healthy_core, n_threads=3, iterations=8)
        assert not result.app_detected and not result.crashed

    def test_parameter_validation(self, healthy_core):
        with pytest.raises(ValueError):
            run_locked_counter(healthy_core, n_threads=0)


class TestLockViolations:
    def _violator(self, rate=0.05, seed=0):
        return Core(
            "lock/bad",
            defects=[AtomicsDefect("d", base_rate=rate)],
            rng=np.random.default_rng(seed),
        )

    def test_spurious_cas_success_breaks_mutual_exclusion(self):
        core = Core(
            "lock/cas",
            defects=[AtomicsDefect("d", base_rate=0.08)],
            rng=np.random.default_rng(3),
        )
        violations = 0
        for _ in range(5):
            shared, hung = run_locked_counter(core, n_threads=4, iterations=20)
            violations += shared.mutual_exclusion_violations
            if hung:
                break
        assert violations > 0

    def test_lost_updates_detected_by_invariant(self):
        detected = 0
        for seed in range(6):
            core = self._violator(rate=0.05, seed=seed)
            result = locking_workload(core, n_threads=4, iterations=24)
            detected += result.app_detected or result.crashed
        assert detected >= 2

    def test_dropped_release_hangs(self):
        """XCHG store dropped -> release never lands -> budget trap."""
        core = Core(
            "lock/hang",
            defects=[AtomicsDefect("d", base_rate=1.0, ops=(Op.XCHG,))],
            rng=np.random.default_rng(1),
        )
        # Every release is dropped: after the first critical section the
        # lock is stuck held and all threads spin forever.
        shared, hung = run_locked_counter(core, n_threads=2, iterations=4)
        assert hung

    def test_ops_restriction_validated(self):
        with pytest.raises(ValueError):
            AtomicsDefect("d", ops=(Op.ADD,))

    def test_named_case_lock_violator_builds(self):
        core = Core(
            "lock/case", defects=named_case("lock_violator"),
            rng=np.random.default_rng(2),
        )
        assert core.is_mercurial
        assert core.defects[0].targets(Op.CAS)
