"""Defect catalog and population sampler."""

import numpy as np
import pytest

from repro.silicon.catalog import (
    ARCHETYPES,
    NAMED_CASES,
    named_case,
    sample_base_rate,
    sample_core_defects,
    sample_defect,
)
from repro.silicon.defects import DefectModel


class TestNamedCases:
    @pytest.mark.parametrize("name", NAMED_CASES)
    def test_every_named_case_builds(self, name):
        defects = named_case(name)
        assert defects
        assert all(isinstance(d, DefectModel) for d in defects)

    def test_unknown_case_raises_with_listing(self):
        with pytest.raises(KeyError) as excinfo:
            named_case("nonexistent")
        assert "available" in str(excinfo.value)


class TestSampler:
    def test_base_rate_within_decades(self, rng):
        for _ in range(100):
            rate = sample_base_rate(rng, decades=(-6.0, -3.0))
            assert 1e-6 <= rate <= 1e-3

    def test_sample_defect_is_valid_model(self, rng):
        defect = sample_defect(rng, "t/d0")
        assert isinstance(defect, DefectModel)
        assert defect.target_ops

    def test_archetype_mix_roughly_matches_weights(self):
        rng = np.random.default_rng(7)
        counts: dict[str, int] = {}
        n = 2500
        for index in range(n):
            defect = sample_defect(rng, f"t/d{index}")
            family = defect.defect_id.split(":")[-1]
            counts[family] = counts.get(family, 0) + 1
        total_weight = sum(a.weight for a in ARCHETYPES)
        for archetype in ARCHETYPES:
            expected = archetype.weight / total_weight
            observed = counts.get(archetype.name, 0) / n
            assert observed == pytest.approx(expected, abs=0.07)

    def test_core_defects_usually_single(self):
        rng = np.random.default_rng(11)
        single = sum(
            1 for i in range(300)
            if len(sample_core_defects(rng, f"c{i}")) == 1
        )
        assert single > 200  # "typically just one core fails" analog

    def test_determinism_under_seed(self):
        a = sample_defect(np.random.default_rng(5), "x")
        b = sample_defect(np.random.default_rng(5), "x")
        assert type(a) is type(b)
        assert a.base_rate == b.base_rate
        assert a.target_ops == b.target_ops

    def test_rate_decades_parameter_respected(self):
        rng = np.random.default_rng(13)
        for i in range(50):
            defect = sample_defect(
                rng, f"loud{i}", rate_decades=(-3.0, -2.5)
            )
            # sbox archetype pins base_rate to 1.0 (deterministic
            # trigger); all others must respect the decade bounds
            # modulo the pattern archetype's x64 gate compensation.
            if "sbox" not in defect.defect_id:
                assert defect.base_rate >= 1e-3
