"""Columnar fleet substrate: build parity, adapters, simulator parity.

The correctness anchor for the struct-of-arrays refactor: everything
the columnar substrate produces must be *bit-identical* to the object
substrate at equal seeds — fleet content, ground truth, and full
simulated event streams.  ``build_legacy`` / the scalar tick remain
the statistical baselines they always were; the bit-exact anchor is
columnar vs the object vectorized path it replaced.
"""

import dataclasses

import numpy as np
import pytest

from repro.fleet.columns import DEFECT_MODE_CODES, FleetColumns, defect_mode_code
from repro.fleet.population import FleetBuilder, ground_truth_map
from repro.fleet.product import DEFAULT_PRODUCTS
from repro.fleet.simulator import FleetSimulator, SimulatorConfig

N_MACHINES = 120


def _builder(seed=11, products=DEFAULT_PRODUCTS):
    return FleetBuilder(
        products=products, seed=seed, deployment_window=(-700.0, 0.0)
    )


def _boosted_products(boost=40.0):
    return tuple(
        dataclasses.replace(p, core_prevalence=p.core_prevalence * boost)
        for p in DEFAULT_PRODUCTS
    )


def _machine_fingerprint(machine):
    return (
        machine.machine_id,
        machine.product.sku,
        machine.deploy_day,
        tuple(
            (
                core.core_id,
                core.is_mercurial,
                tuple(repr(d) for d in core.defects),
            )
            for core in machine.cores
        ),
    )


def _event_stream(result):
    return [
        (e.time_days, e.machine_id, e.core_id, str(e.kind), str(e.reporter),
         e.detail)
        for e in result.events
    ]


class TestBuildParity:
    def test_to_machines_matches_object_builder(self):
        machines, truth = _builder().build(N_MACHINES)
        columns = _builder().build_columns(N_MACHINES)
        col_machines, col_truth = columns.to_machines()
        assert [_machine_fingerprint(m) for m in machines] == [
            _machine_fingerprint(m) for m in col_machines
        ]
        assert truth.n_mercurial == col_truth.n_mercurial
        assert sorted(truth.mercurial_core_ids) == sorted(
            col_truth.mercurial_core_ids
        )
        assert truth.onset_days_by_core == col_truth.onset_days_by_core

    def test_ground_truth_map_matches_object(self):
        machines, _ = _builder().build(N_MACHINES)
        columns = _builder().build_columns(N_MACHINES)
        assert columns.ground_truth_map() == ground_truth_map(machines)

    def test_counts_and_sizes(self):
        columns = _builder().build_columns(N_MACHINES)
        assert columns.n_machines == N_MACHINES
        assert columns.n_cores == int(columns.core_machine.shape[0])
        assert columns.n_mercurial == int(columns.mercurial.sum())
        assert columns.nbytes > 0


class TestIndexing:
    def test_core_id_index_round_trip(self):
        columns = _builder().build_columns(30)
        for flat in (0, 17, columns.n_cores - 1):
            assert columns.core_index(columns.core_id(flat)) == flat

    def test_unknown_core_id_is_none(self):
        columns = _builder().build_columns(10)
        assert columns.core_index("m99999/c00") is None
        assert columns.core_index("garbage") is None

    def test_machine_core_range_partitions_fleet(self):
        columns = _builder().build_columns(25)
        stops = []
        for index in range(columns.n_machines):
            start, stop = columns.machine_core_range(index)
            assert (columns.core_machine[start:stop] == index).all()
            stops.append((start, stop))
        assert stops[0][0] == 0
        assert stops[-1][1] == columns.n_cores


class TestAdapters:
    def test_from_machines_round_trips_ids(self):
        machines, _ = _builder().build(20)
        columns = FleetColumns.from_machines(machines)
        assert columns.n_cores == sum(len(m.cores) for m in machines)
        assert columns.ground_truth_map() == ground_truth_map(machines)

    def test_adapted_columns_refuse_to_materialize(self):
        machines, _ = _builder().build(5)
        columns = FleetColumns.from_machines(machines)
        with pytest.raises(ValueError):
            columns.to_machines()

    def test_defect_mode_codes_distinct_and_nonzero(self):
        codes = set(DEFECT_MODE_CODES.values())
        assert len(codes) == len(DEFECT_MODE_CODES)
        assert 0 not in codes  # 0 is reserved for "healthy"
        assert defect_mode_code(()) == 0

    def test_thaw_copies_mutable_state_only(self):
        columns = _builder().build_columns(10)
        thawed = columns.thaw()
        thawed.online[0] = False
        assert bool(columns.online[0]) is True
        # immutable columns are shared, not copied
        assert thawed.core_machine is columns.core_machine


class TestSimulatorParity:
    CONFIG = SimulatorConfig(horizon_days=60.0, warmup_days=0.0)

    def _object_result(self):
        machines, truth = _builder(products=_boosted_products()).build(150)
        return FleetSimulator(machines, truth, self.CONFIG, seed=3).run()

    def _columnar_result(self):
        columns = _builder(products=_boosted_products()).build_columns(150)
        return FleetSimulator(columns, config=self.CONFIG, seed=3).run()

    def test_event_streams_bit_identical(self):
        obj = self._object_result()
        col = self._columnar_result()
        assert _event_stream(obj) == _event_stream(col)
        assert sorted(obj.quarantined_cores) == sorted(col.quarantined_cores)
        assert obj.quarantine_day == col.quarantine_day
        assert obj.detection_latency_days == col.detection_latency_days
        assert obj.total_corruptions == col.total_corruptions
        assert obj.app_visible_corruptions == col.app_visible_corruptions
        assert obj.screening_ops_spent == col.screening_ops_spent

    def test_columnar_requires_vectorized_tick(self):
        columns = _builder().build_columns(5)
        config = SimulatorConfig(
            horizon_days=5.0, warmup_days=0.0, vectorized=False
        )
        with pytest.raises(ValueError, match="to_machines"):
            FleetSimulator(columns, config=config, seed=1)

    def test_truth_derived_from_columns(self):
        columns = _builder().build_columns(40)
        sim = FleetSimulator(
            columns,
            config=SimulatorConfig(horizon_days=1.0, warmup_days=0.0),
            seed=1,
        )
        assert sim.truth.n_mercurial == columns.n_mercurial
        assert sorted(sim.truth.mercurial_core_ids) == sorted(
            columns.core_id(int(flat)) for flat in columns.merc_core
        )

    def test_object_path_still_requires_explicit_truth(self):
        machines, _ = _builder().build(5)
        with pytest.raises(TypeError):
            FleetSimulator(machines, None, self.CONFIG, seed=1)


class TestMercurialViews:
    def test_merc_defects_match_materialized_cores(self):
        columns = _builder(products=_boosted_products()).build_columns(60)
        machines, _ = _builder(products=_boosted_products()).build(60)
        core_by_id = {
            c.core_id: c for m in machines for c in m.cores
        }
        assert columns.n_mercurial > 0
        for index in range(columns.n_mercurial):
            flat = int(columns.merc_core[index])
            core = core_by_id[columns.core_id(flat)]
            assert tuple(repr(d) for d in columns.merc_defects(index)) == (
                tuple(repr(d) for d in core.defects)
            )
