"""Complaint service and concentration analysis."""

import numpy as np
import pytest

from repro.core.events import EventKind, EventLog
from repro.core.report import Complaint, CoreComplaintService, _binomial_tail


def _complaint(core, app="app0", t=0.0):
    machine = core.rsplit("/", 1)[0]
    return Complaint(
        time_days=t, application=app, machine_id=machine, core_id=core
    )


class TestBinomialTail:
    def test_certainty_cases(self):
        assert _binomial_tail(10, 0, 0.5) == 1.0
        assert _binomial_tail(10, 11, 0.5) == 0.0

    def test_matches_scipy(self):
        from scipy import stats

        for n, k, p in ((50, 5, 0.02), (100, 3, 0.001), (20, 10, 0.5)):
            expected = stats.binom.sf(k - 1, n, p)
            assert _binomial_tail(n, k, p) == pytest.approx(expected, rel=1e-9)


class TestComplaintService:
    def test_concentrated_reports_become_suspects(self):
        service = CoreComplaintService(n_cores_visible=1000)
        for index in range(6):
            service.report(_complaint("m1/c3", app=f"app{index % 2}", t=index))
        suspects = service.analyze()
        assert suspects[0].core_id == "m1/c3"
        assert suspects[0].p_value < 1e-6
        assert suspects[0].grounds_for_quarantine

    def test_spread_reports_are_dismissed(self):
        rng = np.random.default_rng(0)
        service = CoreComplaintService(n_cores_visible=1000)
        for index in range(60):
            core = f"m{rng.integers(100)}/c{rng.integers(10)}"
            service.report(_complaint(core, t=index))
        assert not service.quarantine_candidates()

    def test_single_application_not_quarantine_grounds(self):
        """Concentration from one app could be that app's bug."""
        service = CoreComplaintService(n_cores_visible=100000)
        for index in range(6):
            service.report(_complaint("m1/c3", app="only-app", t=index))
        suspect = service.analyze()[0]
        assert suspect.p_value < 1e-4
        assert not suspect.grounds_for_quarantine

    def test_min_reports_filter(self):
        service = CoreComplaintService(n_cores_visible=1000)
        service.report(_complaint("m1/c1"))
        assert service.analyze(min_reports=2) == []

    def test_reports_mirrored_into_event_log(self):
        log = EventLog()
        service = CoreComplaintService(n_cores_visible=10, event_log=log)
        service.report(_complaint("m0/c0"))
        assert len(log) == 1
        assert log.filter(kind=EventKind.APP_REPORT)

    def test_empty_service_analyzes_empty(self):
        assert CoreComplaintService(n_cores_visible=10).analyze() == []

    def test_needs_positive_population(self):
        with pytest.raises(ValueError):
            CoreComplaintService(n_cores_visible=0)

    def test_complaints_against(self):
        service = CoreComplaintService(n_cores_visible=10)
        service.report(_complaint("m0/c0"))
        service.report(_complaint("m0/c1"))
        assert len(service.complaints_against("m0/c0")) == 1
