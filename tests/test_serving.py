"""Serving layer units: replicas, router, and the robustness toolkit."""

import numpy as np
import pytest

from repro.core.events import EventKind, EventLog
from repro.serving.robustness import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
    HardeningConfig,
    LoadShedConfig,
    LoadShedder,
    ResponseValidator,
    RetryPolicy,
)
from repro.serving.service import Request, RoundRobinRouter, ServerReplica
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.errors import CoreOfflineError, MachineCheckError
from repro.silicon.units import FunctionalUnit


def _replica(core_id="srv/c00", defects=(), seed=0, **kwargs) -> ServerReplica:
    core = Core(core_id, defects=defects, rng=np.random.default_rng(seed))
    return ServerReplica(core_id, core, **kwargs)


def _bad_replica(core_id="srv/bad", base_rate=1.0, seed=0) -> ServerReplica:
    defect = StuckBitDefect(
        "d0", bit=7, base_rate=base_rate, unit=FunctionalUnit.LOAD_STORE
    )
    return _replica(core_id, defects=(defect,), seed=seed)


def _request(payload=b"0123456789abcdef", request_id=0) -> Request:
    return Request(request_id=request_id, payload=payload, deadline_ms=50.0)


class TestServerReplica:
    def test_healthy_replica_echoes_payload(self, rng):
        replica = _replica()
        payload, latency = replica.serve(_request(), rng)
        assert payload == b"0123456789abcdef"
        assert latency > 0.0

    def test_mercurial_replica_corrupts_but_stays_well_formed(self, rng):
        replica = _bad_replica(base_rate=1.0)
        request = _request()
        payload, _ = replica.serve(request, rng)
        assert payload != request.payload      # corrupted...
        assert len(payload) == len(request.payload)  # ...but well-formed

    def test_offline_core_raises(self, rng):
        replica = _replica()
        replica.core.set_online(False)
        with pytest.raises(CoreOfflineError):
            replica.serve(_request(), rng)

    def test_forced_mce_raises_and_decrements(self, rng):
        replica = _replica()
        replica.forced_mce_remaining = 1
        with pytest.raises(MachineCheckError):
            replica.serve(_request(), rng)
        payload, _ = replica.serve(_request(), rng)
        assert payload == _request().payload


class TestRouter:
    def test_round_robin_spreads_load(self):
        replicas = [_replica(f"srv/c{i:02d}", seed=i) for i in range(3)]
        router = RoundRobinRouter(replicas)
        picked = [router.pick().core_id for _ in range(6)]
        assert picked == [
            "srv/c00", "srv/c01", "srv/c02",
            "srv/c00", "srv/c01", "srv/c02",
        ]

    def test_pick_honours_exclusions(self):
        replicas = [_replica(f"srv/c{i:02d}", seed=i) for i in range(3)]
        router = RoundRobinRouter(replicas)
        picked = router.pick(exclude_core_ids={"srv/c00", "srv/c01"})
        assert picked.core_id == "srv/c02"

    def test_pick_skips_offline_and_returns_none_when_drained(self):
        replicas = [_replica(f"srv/c{i:02d}", seed=i) for i in range(2)]
        for replica in replicas:
            replica.core.set_online(False)
        router = RoundRobinRouter(replicas)
        assert router.pick() is None


class TestValidator:
    def test_validator_passes_intact_payload(self):
        validator = ResponseValidator(
            Core("client/c00", rng=np.random.default_rng(0))
        )
        checksum = validator.checksum(b"hello world")
        assert validator.validate(checksum, b"hello world")
        assert validator.mismatches == 0

    def test_validator_catches_single_bit_corruption(self):
        validator = ResponseValidator(
            Core("client/c00", rng=np.random.default_rng(0))
        )
        checksum = validator.checksum(b"hello world")
        assert not validator.validate(checksum, b"hellp world")
        assert validator.mismatches == 1


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_backoff_ms=2.0, multiplier=2.0, max_backoff_ms=10.0,
            jitter=0.0,
        )
        rng = np.random.default_rng(0)
        delays = [policy.backoff_ms(i, rng) for i in range(4)]
        assert delays == [2.0, 4.0, 8.0, 10.0]

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_backoff_ms=8.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            delay = policy.backoff_ms(0, rng)
            assert 4.0 <= delay <= 8.0

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCircuitBreaker:
    def test_trips_after_threshold_within_window(self):
        breaker = CircuitBreaker(
            "c0", BreakerConfig(failure_threshold=3, window_ms=100.0)
        )
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(10.0)
        assert breaker.record_failure(20.0)
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allows(50.0)

    def test_old_failures_age_out_of_window(self):
        breaker = CircuitBreaker(
            "c0", BreakerConfig(failure_threshold=3, window_ms=100.0)
        )
        breaker.record_failure(0.0)
        breaker.record_failure(10.0)
        assert not breaker.record_failure(500.0)  # first two aged out
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_then_close_on_success(self):
        config = BreakerConfig(
            failure_threshold=1, window_ms=100.0, cooldown_ms=50.0
        )
        breaker = CircuitBreaker("c0", config)
        breaker.record_failure(0.0)
        assert not breaker.allows(10.0)
        assert breaker.allows(60.0)  # cooldown elapsed -> half-open probe
        breaker.record_success(61.0)
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens(self):
        config = BreakerConfig(
            failure_threshold=1, window_ms=100.0, cooldown_ms=50.0
        )
        breaker = CircuitBreaker("c0", config)
        breaker.record_failure(0.0)
        assert breaker.allows(60.0)
        assert breaker.record_failure(61.0)
        assert breaker.state is BreakerState.OPEN

    def test_open_to_half_open_exactly_at_cooldown_boundary(self):
        config = BreakerConfig(
            failure_threshold=1, window_ms=100.0, cooldown_ms=50.0
        )
        breaker = CircuitBreaker("c0", config)
        breaker.record_failure(0.0)
        assert not breaker.allows(49.9)          # still cooling
        assert breaker.state is BreakerState.OPEN
        assert breaker.allows(50.0)              # inclusive boundary
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_survives_repeated_allows_until_verdict(self):
        config = BreakerConfig(
            failure_threshold=1, window_ms=100.0, cooldown_ms=50.0
        )
        breaker = CircuitBreaker("c0", config)
        breaker.record_failure(0.0)
        assert breaker.allows(60.0)
        # more probe traffic is allowed while the verdict is pending
        assert breaker.allows(61.0)
        assert breaker.allows(62.0)
        assert breaker.state is BreakerState.HALF_OPEN

    def test_probe_success_clears_failure_history(self):
        config = BreakerConfig(
            failure_threshold=2, window_ms=1000.0, cooldown_ms=50.0
        )
        breaker = CircuitBreaker("c0", config)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)              # trips (threshold 2)
        assert breaker.state is BreakerState.OPEN
        assert breaker.allows(60.0)              # half-open probe
        breaker.record_success(61.0)
        assert breaker.state is BreakerState.CLOSED
        # the pre-trip failures must not count toward the next trip
        assert not breaker.record_failure(62.0)
        assert breaker.state is BreakerState.CLOSED

    def test_failed_probe_reopens_and_restarts_cooldown(self):
        config = BreakerConfig(
            failure_threshold=1, window_ms=100.0, cooldown_ms=50.0
        )
        breaker = CircuitBreaker("c0", config)
        breaker.record_failure(0.0)
        assert breaker.allows(60.0)
        assert breaker.record_failure(70.0)      # failed probe re-trips
        assert breaker.trips == 2
        assert not breaker.allows(119.9)         # cooldown from 70.0
        assert breaker.allows(120.0)

    def test_board_emits_trip_event(self):
        log = EventLog()
        board = BreakerBoard(
            BreakerConfig(failure_threshold=2, window_ms=100.0),
            event_log=log,
            machine_of={"m0/c00": "m0"},
        )
        board.record_failure("m0/c00", 1.0, "checksum mismatch")
        board.record_failure("m0/c00", 2.0, "checksum mismatch")
        trips = [e for e in log if e.kind is EventKind.BREAKER_TRIP]
        assert len(trips) == 1
        assert trips[0].core_id == "m0/c00"
        assert trips[0].machine_id == "m0"
        assert board.total_trips == 1


class TestLoadShedder:
    def test_admits_everything_under_capacity(self):
        shedder = LoadShedder(LoadShedConfig(max_queue_factor=3.0))
        assert shedder.admit(queue_len=0, arrivals=5, capacity=10) == 5
        assert shedder.shed_count == 0

    def test_sheds_past_queue_limit(self):
        shedder = LoadShedder(LoadShedConfig(max_queue_factor=2.0))
        admitted = shedder.admit(queue_len=18, arrivals=10, capacity=10)
        assert admitted == 2   # limit 20, room for 2
        assert shedder.shed_count == 8

    def test_queue_exactly_at_limit_admits_nothing(self):
        shedder = LoadShedder(LoadShedConfig(max_queue_factor=2.0))
        assert shedder.admit(queue_len=20, arrivals=5, capacity=10) == 0
        assert shedder.shed_count == 5

    def test_one_slot_below_limit_admits_exactly_one(self):
        shedder = LoadShedder(LoadShedConfig(max_queue_factor=2.0))
        assert shedder.admit(queue_len=19, arrivals=5, capacity=10) == 1
        assert shedder.shed_count == 4

    def test_arrivals_filling_queue_to_exactly_the_limit_all_admit(self):
        shedder = LoadShedder(LoadShedConfig(max_queue_factor=2.0))
        assert shedder.admit(queue_len=15, arrivals=5, capacity=10) == 5
        assert shedder.shed_count == 0

    def test_limit_never_drops_below_one_ticks_capacity(self):
        # A sub-1.0 factor would starve the service; the floor is the
        # per-tick capacity itself.
        shedder = LoadShedder(LoadShedConfig(max_queue_factor=0.5))
        assert shedder.admit(queue_len=0, arrivals=12, capacity=10) == 10
        assert shedder.shed_count == 2

    def test_rejects_non_positive_factor(self):
        with pytest.raises(ValueError):
            LoadShedConfig(max_queue_factor=0.0)


class TestHardeningConfig:
    def test_unhardened_disables_everything(self):
        config = HardeningConfig.unhardened()
        assert not config.validate
        assert config.retry is None
        assert config.hedge is None
        assert config.breaker is None
        assert config.shed is None

    def test_validator_only_drops_breaker_keeps_validation(self):
        config = HardeningConfig.validator_only()
        assert config.validate
        assert config.breaker is None
        assert config.retry is not None
