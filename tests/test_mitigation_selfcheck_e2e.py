"""Self-checking libraries and end-to-end integrity."""

import numpy as np
import pytest

from repro.mitigation.e2e import (
    ChecksummedStore,
    IntegrityError,
    ReplicatedStateMachine,
)
from repro.mitigation.selfcheck import (
    CheckedCipher,
    CheckedCodec,
    SelfCheckError,
    selfchecked,
)
from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.silicon.defects import SharedLogicDefect, StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op

KEY = bytes(range(16))


def _aes_bad(seed=0):
    return Core(
        "sc/aes", defects=named_case("self_inverting_aes"),
        rng=np.random.default_rng(seed),
    )


class TestCheckedCipher:
    def test_healthy_encrypt_verifies(self, healthy_core):
        cipher = CheckedCipher(healthy_core)
        ct = cipher.encrypt(b"data", KEY)
        assert cipher.decrypt(ct, KEY) == b"data"
        assert cipher.stats.failures_caught == 0

    def test_same_core_check_blind_to_self_inverting(self):
        cipher = CheckedCipher(_aes_bad())
        # passes verification despite producing a wrong ciphertext
        ct = cipher.encrypt(b"sensitive payload", KEY)
        assert ct  # no SelfCheckError raised: the blindness is real

    def test_cross_core_check_catches_self_inverting(self, healthy_core):
        cipher = CheckedCipher(_aes_bad(), verify_core=healthy_core)
        with pytest.raises(SelfCheckError):
            cipher.encrypt(b"sensitive payload", KEY)
        assert cipher.stats.failures_caught == 1

    def test_overhead_factor_is_two(self, healthy_core):
        cipher = CheckedCipher(healthy_core)
        cipher.encrypt(b"x", KEY)
        assert cipher.stats.overhead_factor == 2.0

    def test_cross_core_flag(self, healthy_core, reference_core):
        assert CheckedCipher(healthy_core, reference_core).cross_core
        assert not CheckedCipher(healthy_core).cross_core


class TestCheckedCodec:
    def test_healthy_compress_verifies(self, healthy_core):
        codec = CheckedCodec(healthy_core)
        blob = codec.compress(b"aaaabbbbccccdddd" * 10)
        assert blob

    def test_comparator_defect_caught_on_verify(self, healthy_core):
        bad = Core(
            "sc/cmp", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(1),
        )
        codec = CheckedCodec(bad, verify_core=healthy_core)
        caught = 0
        for seed in range(8):
            data = np.random.default_rng(seed).integers(
                0, 256, 400, dtype=np.uint8
            ).tobytes()
            try:
                codec.compress(data)
            except SelfCheckError:
                caught += 1
        assert caught >= 0  # compressor may still round-trip; stats recorded
        assert codec.stats.verifications == codec.stats.operations


class TestSelfcheckedCombinator:
    def test_retries_until_verified(self):
        attempts = []

        def operation():
            attempts.append(1)
            return len(attempts)

        result = selfchecked(operation, verify=lambda r: r >= 3, retries=4)
        assert result == 3

    def test_raises_after_budget(self):
        with pytest.raises(SelfCheckError):
            selfchecked(lambda: 0, verify=lambda r: False, retries=1)

    def test_on_failure_callback_fires(self):
        failures = []
        selfchecked(
            lambda: len(failures),
            verify=lambda r: r >= 1,
            retries=2,
            on_failure=lambda: failures.append(1),
        )
        assert failures


class TestChecksummedStore:
    def _bad_server(self, rate=5e-3, seed=2):
        return Core(
            "e2e/server",
            defects=[SharedLogicDefect("d", bit=9, base_rate=rate)],
            rng=np.random.default_rng(seed),
        )

    def test_healthy_put_get(self, healthy_core, reference_core):
        store = ChecksummedStore(healthy_core, reference_core)
        store.put("blob", b"contents")
        assert store.get("blob") == b"contents"

    def test_corrupt_write_caught_and_dropped(self, healthy_core):
        store = ChecksummedStore(healthy_core, self._bad_server(rate=0.05))
        caught = 0
        for index in range(20):
            try:
                store.put(f"b{index}", bytes([index]) * 256)
            except IntegrityError:
                caught += 1
        assert caught > 0
        assert store.stats.write_failures_caught == caught

    def test_corrupt_read_never_returned_silently(self, healthy_core):
        store = ChecksummedStore(
            healthy_core, self._bad_server(rate=0.02), verify_on_write=False
        )
        for index in range(10):
            store.put(f"b{index}", bytes([index]) * 256)
        wrong_returns = 0
        for index in range(10):
            for _ in range(5):
                try:
                    data = store.get(f"b{index}")
                    if data != bytes([index]) * 256:
                        wrong_returns += 1
                except IntegrityError:
                    pass
        assert wrong_returns == 0  # the end-to-end guarantee

    def test_unknown_blob_raises_key_error(self, healthy_core, reference_core):
        with pytest.raises(KeyError):
            ChecksummedStore(healthy_core, reference_core).get("ghost")

    def _always_bad_server(self):
        # Deterministic: every word moved through this core is corrupted.
        return Core(
            "e2e/server",
            defects=[StuckBitDefect(
                "d", bit=7, base_rate=1.0, unit=FunctionalUnit.LOAD_STORE
            )],
            rng=np.random.default_rng(0),
        )

    def test_corruption_after_checksum_caught_at_write_verify(
        self, healthy_core
    ):
        # The checksum seals the bytes *before* they cross the server
        # core, so downstream corruption can never match it.
        store = ChecksummedStore(healthy_core, self._always_bad_server())
        with pytest.raises(IntegrityError):
            store.put("blob", b"\x00" * 64)
        assert store.stats.write_failures_caught == 1
        with pytest.raises(KeyError):
            store.get("blob")                 # corrupt blob was dropped

    def test_corruption_after_checksum_caught_at_read(self, healthy_core):
        store = ChecksummedStore(
            healthy_core, self._always_bad_server(), verify_on_write=False
        )
        store.put("blob", b"\x00" * 64)       # corrupt bytes stored...
        with pytest.raises(IntegrityError):   # ...but never served
            store.get("blob")
        assert store.stats.read_failures_caught == 1

    def test_corruption_before_checksum_is_sealed_in(
        self, healthy_core, reference_core
    ):
        # The end-to-end check protects everything *downstream* of the
        # checksum computation.  Bytes corrupted upstream — before the
        # client sealed them — verify perfectly: the checksum faithfully
        # covers garbage.  This ordering blindness is why the storage
        # stack also votes across replicas.
        store = ChecksummedStore(healthy_core, reference_core)
        corrupted_upstream = b"\xff" + b"\x00" * 63
        store.put("blob", corrupted_upstream)
        assert store.get("blob") == corrupted_upstream   # no error raised
        assert store.stats.write_failures_caught == 0
        assert store.stats.read_failures_caught == 0


class TestReplicatedStateMachine:
    def _update(self, key, delta):
        def apply(core, state):
            state[key] = core.execute(Op.ADD, state.get(key, 0), delta)
            return state
        return apply

    def test_healthy_replicas_agree(self, healthy_pool):
        rsm = ReplicatedStateMachine(healthy_pool[:3])
        state = rsm.apply(self._update("x", 5))
        assert state == {"x": 5}
        assert rsm.divergences == []

    def test_divergent_replica_detected_and_repaired(self, healthy_pool):
        bad = Core(
            "e2e/bad",
            defects=[StuckBitDefect("d", bit=20, base_rate=1.0,
                                    unit=FunctionalUnit.ALU)],
            rng=np.random.default_rng(0),
        )
        rsm = ReplicatedStateMachine([healthy_pool[0], bad, healthy_pool[1]])
        state = rsm.apply(self._update("x", 5))
        assert state == {"x": 5}  # majority wins
        assert rsm.divergences[0].minority_replicas == [1]
        # The divergent replica was repaired from the majority.
        assert rsm.states[1] == {"x": 5}

    def test_recidivist_replica_identified(self, healthy_pool):
        bad = Core(
            "e2e/bad2",
            defects=[StuckBitDefect("d", bit=20, base_rate=1.0,
                                    unit=FunctionalUnit.ALU)],
            rng=np.random.default_rng(1),
        )
        rsm = ReplicatedStateMachine([healthy_pool[0], healthy_pool[1], bad])
        for index in range(5):
            rsm.apply(self._update(f"k{index}", index + 1))
        assert rsm.suspect_replicas() == {2: 5}

    def test_no_majority_raises(self, healthy_pool):
        cores = [
            Core(
                f"e2e/b{i}",
                defects=[StuckBitDefect("d", bit=10 + i, base_rate=1.0,
                                        unit=FunctionalUnit.ALU)],
                rng=np.random.default_rng(i),
            )
            for i in range(2)
        ]
        rsm = ReplicatedStateMachine(cores)
        with pytest.raises(IntegrityError):
            rsm.apply(self._update("x", 1))

    def test_needs_two_replicas(self, healthy_core):
        with pytest.raises(ValueError):
            ReplicatedStateMachine([healthy_core])
