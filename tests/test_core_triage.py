"""Human triage model."""

import numpy as np
import pytest

from repro.core.triage import HumanTriageModel, TriageOutcome


def make_triage(seed=0, **kwargs):
    return HumanTriageModel(np.random.default_rng(seed), **kwargs)


class TestFiling:
    def test_cee_incidents_filed_more_often(self):
        triage = make_triage(
            p_flag_given_core_incident=0.6, p_false_positive_signal=0.1
        )
        cee = sum(triage.files_suspect(True) for _ in range(2000))
        noise = sum(triage.files_suspect(False) for _ in range(2000))
        assert cee / 2000 == pytest.approx(0.6, abs=0.05)
        assert noise / 2000 == pytest.approx(0.1, abs=0.03)

    def test_misattribution_rate(self):
        triage = make_triage(p_misattribute=0.2)
        right = sum(triage.attributed_core_is_right() for _ in range(2000))
        assert right / 2000 == pytest.approx(0.8, abs=0.04)


class TestInvestigation:
    def test_stochastic_mercurial_mostly_confirms(self):
        triage = make_triage(p_confess_given_mercurial=0.9)
        for index in range(100):
            triage.investigate(f"c{index}", core_is_mercurial=True,
                               started_days=float(index))
        assert triage.confirmation_rate() > 0.8

    def test_healthy_never_confirms(self):
        triage = make_triage()
        for index in range(100):
            triage.investigate(f"c{index}", core_is_mercurial=False,
                               started_days=float(index))
        fractions = triage.outcome_fractions()
        assert fractions[TriageOutcome.CONFIRMED] == 0.0
        assert fractions[TriageOutcome.FALSE_ACCUSATION] > 0.0

    def test_confession_test_overrides_stochastic_model(self):
        triage = make_triage()
        record = triage.investigate(
            "c0", core_is_mercurial=True, started_days=0.0,
            confession_test=lambda: True, attempts=5,
        )
        assert record.outcome is TriageOutcome.CONFIRMED
        assert record.attempts == 1

    def test_failed_confession_on_mercurial_is_unreproducible(self):
        triage = make_triage()
        record = triage.investigate(
            "c0", core_is_mercurial=True, started_days=0.0,
            confession_test=lambda: False, attempts=3,
        )
        assert record.outcome is TriageOutcome.UNREPRODUCIBLE

    def test_failed_confession_on_healthy_is_false_accusation(self):
        triage = make_triage()
        record = triage.investigate(
            "c0", core_is_mercurial=False, started_days=0.0,
            confession_test=lambda: False,
        )
        assert record.outcome is TriageOutcome.FALSE_ACCUSATION

    def test_duration_within_configured_bounds(self):
        triage = make_triage(investigation_days=(3.0, 5.0))
        record = triage.investigate("c0", True, 0.0)
        assert 3.0 <= record.duration_days <= 5.0

    def test_outcome_fractions_sum_to_one(self):
        triage = make_triage()
        for index in range(50):
            triage.investigate(f"c{index}", index % 2 == 0, float(index))
        assert sum(triage.outcome_fractions().values()) == pytest.approx(1.0)

    def test_empty_model_fractions_zero(self):
        assert all(v == 0.0 for v in make_triage().outcome_fractions().values())

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            make_triage(p_misattribute=1.5)
