"""Documentation freshness and coverage gates.

Three contracts keep the operator docs honest:

- every metric series and span name the source tree emits is
  documented in OBSERVABILITY.md (the catalog is the interface);
- docs/api.md matches what scripts/gen_api_docs.py generates today;
- every relative markdown link (and anchor) in the repo resolves.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

# Matches obs.metrics.counter("name", ...) / gauge / histogram, with the
# name literal on the same or the next line.
_METRIC_CALL = re.compile(
    r"metrics\.(?:counter|gauge|histogram)\(\s*\n?\s*\"([a-z0-9_]+)\"",
)
# Matches tracer.span("name", ...) — and self._tracer-style aliases.
_SPAN_CALL = re.compile(r"\.span\(\s*\n?\s*\"([a-z0-9_.]+)\"")


def _emitted_metric_names() -> set[str]:
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        names.update(_METRIC_CALL.findall(path.read_text()))
    return names


def _emitted_span_names() -> set[str]:
    names: set[str] = set()
    for path in SRC.rglob("*.py"):
        names.update(_SPAN_CALL.findall(path.read_text()))
    return names


class TestObservabilityCatalog:
    def test_source_actually_emits_metrics(self):
        # Guard the regex itself: if the instrumentation idiom changes
        # shape, this fails loudly instead of vacuously passing below.
        names = _emitted_metric_names()
        assert len(names) >= 15
        assert "serving_requests_total" in names
        assert "fleet_ticks_total" in names

    def test_every_emitted_metric_is_documented(self):
        doc = (REPO / "OBSERVABILITY.md").read_text()
        missing = sorted(
            name for name in _emitted_metric_names() if f"`{name}`" not in doc
        )
        assert not missing, (
            f"metrics emitted but missing from OBSERVABILITY.md: {missing}"
        )

    def test_every_emitted_span_is_documented(self):
        doc = (REPO / "OBSERVABILITY.md").read_text()
        spans = _emitted_span_names()
        assert "engine.trial" in spans and "storage.put" in spans
        missing = sorted(
            name for name in spans if f"`{name}`" not in doc
        )
        assert not missing, (
            f"spans emitted but missing from OBSERVABILITY.md: {missing}"
        )


class TestScreeningGuide:
    """SCREENING.md stays in step with the fleetscreen subsystem."""

    def _doc(self) -> str:
        return (REPO / "SCREENING.md").read_text()

    def test_fleetscreen_metrics_and_spans_documented(self):
        doc = self._doc()
        source = (SRC / "detection" / "fleetscreen.py").read_text()
        emitted = set(_METRIC_CALL.findall(source)) | set(
            _SPAN_CALL.findall(source)
        )
        assert emitted  # regex guard: the module really instruments
        missing = sorted(
            name for name in emitted if f"`{name}`" not in doc
        )
        assert not missing, (
            f"fleetscreen names missing from SCREENING.md: {missing}"
        )

    def test_screening_event_kinds_documented(self):
        doc = self._doc()
        for kind in ("FLEETSCREEN_FAIL", "RIDEALONG_SKIPPED"):
            assert f"`{kind}`" in doc

    def test_corpus_taxonomy_and_workflow_covered(self):
        doc = self._doc()
        # the two corpus species, the distillation entry points, and
        # the budget knob must all be named
        for needle in ("isa:", "lib:", "distill", "full_battery",
                       "budget_fraction", "E19"):
            assert needle in doc, f"SCREENING.md does not mention {needle!r}"

    def test_screening_guide_linked_from_readme(self):
        assert "SCREENING.md" in (REPO / "README.md").read_text()


class TestGeneratedDocs:
    def test_api_docs_fresh(self):
        proc = subprocess.run(
            [sys.executable, "scripts/gen_api_docs.py", "--check"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_markdown_links_resolve(self):
        proc = subprocess.run(
            [sys.executable, "scripts/check_docs.py"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr

    def test_observability_linked_from_readme(self):
        assert "OBSERVABILITY.md" in (REPO / "README.md").read_text()
