"""Contract tests for trace spans: determinism is the whole point.

Span and trace ids must be pure functions of (trial seed, call-tree
position) — never of wall clock, RNG state, or worker placement — so
that campaign artifacts stay bit-identical for any worker count.
"""

import pickle

import pytest

from repro import obs
from repro.engine.runner import run_trials
from repro.obs.spans import Tracer


@pytest.fixture
def tracer() -> Tracer:
    return Tracer(enabled=True)


class TestSpanTree:
    def test_parent_child_links(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert inner.trace_id == outer.trace_id

    def test_sibling_spans_get_distinct_ids(self, tracer):
        with tracer.span("op"):
            pass
        with tracer.span("op"):
            pass
        first, second = tracer.spans()
        assert first.span_id != second.span_id
        assert first.name == second.name == "op"

    def test_attrs_settable_inside_block(self, tracer):
        with tracer.span("op", fixed="x") as sp:
            sp.attrs["status"] = "ok"
        (span,) = tracer.spans()
        assert span.attrs == {"fixed": "x", "status": "ok"}

    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("op"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.attrs["error"] == "ValueError"
        assert span.end_ms is not None


class TestDeterminism:
    def test_same_seed_same_ids(self):
        def record(seed):
            t = Tracer()
            t.start_trace(seed)
            with t.span("a"):
                with t.span("b"):
                    pass
            with t.span("a"):
                pass
            return [(s.name, s.trace_id, s.span_id, s.parent_id)
                    for s in t.spans()]

        assert record(42) == record(42)
        assert record(42) != record(43)

    def test_clock_is_simulated_not_wall(self, tracer):
        now = {"ms": 10.0}
        tracer.set_clock(lambda: now["ms"])
        with tracer.span("op"):
            now["ms"] = 25.0
        (span,) = tracer.spans()
        assert span.start_ms == 10.0
        assert span.end_ms == 25.0
        assert span.duration_ms == 15.0

    def test_default_clock_is_zero(self, tracer):
        with tracer.span("op"):
            pass
        (span,) = tracer.spans()
        assert span.start_ms == 0.0 and span.end_ms == 0.0


class TestPoolHandOff:
    def test_spans_pickle_round_trip(self, tracer):
        with tracer.span("op", core="c0") as sp:
            sp.attrs["ok"] = True
        restored = pickle.loads(pickle.dumps(tracer.drain()))
        assert restored[0].name == "op"
        assert restored[0].attrs == {"core": "c0", "ok": True}

    def test_drain_empties_adopt_restores(self, tracer):
        with tracer.span("op"):
            pass
        spans = tracer.drain()
        assert tracer.spans() == []
        tracer.adopt(spans)
        assert [s.name for s in tracer.spans()] == ["op"]

    def test_disabled_tracer_records_nothing(self):
        t = Tracer(enabled=False)
        with t.span("op") as sp:
            sp.attrs["ignored"] = 1  # null span accepts the idiom
        assert t.spans() == []


def _spanning_trial(trial):
    with obs.tracer.span("work", index=trial.index):
        pass
    return trial.index


class TestWorkerCountInvariance:
    """The engine contract: workers 1 vs N yield identical span ids."""

    def _run(self, workers: int):
        obs.metrics.reset()
        obs.tracer.reset()
        run_trials(_spanning_trial, 4, seed=11, workers=workers)
        return [
            (s.name, s.trace_id, s.span_id, s.parent_id)
            for s in obs.tracer.spans()
        ]

    def test_span_ids_identical_workers_1_vs_3(self):
        prior = obs.enabled()
        obs.set_enabled(True)
        try:
            serial = self._run(1)
            pooled = self._run(3)
        finally:
            obs.set_enabled(prior)
        assert serial == pooled
        # every trial contributed its engine.trial root + the work span
        names = [name for name, *_ in serial]
        assert names.count("engine.trial") == 4
        assert names.count("work") == 4
        # distinct trials are distinct traces (seed-derived trace ids)
        trace_ids = {trace for _, trace, *_ in serial}
        assert len(trace_ids) == 4
