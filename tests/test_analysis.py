"""Statistics, economics, and figure rendering."""

import math

import pytest

from repro.analysis.economics import (
    ScreeningPolicy,
    exposure_before_detection,
    false_positive_cost,
    policy_frontier,
)
from repro.analysis.figures import (
    normalize_series,
    render_fig1,
    render_series,
    render_table,
)
from repro.analysis.stats import (
    binomial_ci,
    exposure_needed,
    orders_of_magnitude_spread,
    poisson_rate_ci,
    trend_slope,
)


class TestPoissonCi:
    def test_point_estimate(self):
        estimate = poisson_rate_ci(10, 100.0)
        assert estimate.rate == pytest.approx(0.1)

    def test_interval_contains_rate(self):
        estimate = poisson_rate_ci(10, 100.0)
        assert estimate.lower < estimate.rate < estimate.upper

    def test_zero_events_lower_bound_zero(self):
        estimate = poisson_rate_ci(0, 50.0)
        assert estimate.lower == 0.0
        assert estimate.upper > 0.0

    def test_more_events_tighter_relative_interval(self):
        small = poisson_rate_ci(5, 10.0)
        large = poisson_rate_ci(500, 1000.0)
        rel_small = (small.upper - small.lower) / small.rate
        rel_large = (large.upper - large.lower) / large.rate
        assert rel_large < rel_small

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_rate_ci(1, 0.0)


class TestBinomialCi:
    def test_bounds(self):
        lower, upper = binomial_ci(5, 10)
        assert 0.0 < lower < 0.5 < upper < 1.0

    def test_edge_cases(self):
        assert binomial_ci(0, 10)[0] == 0.0
        assert binomial_ci(10, 10)[1] == 1.0


class TestExposureNeeded:
    def test_rarer_rates_need_more_exposure(self):
        assert exposure_needed(1e-6) > exposure_needed(1e-3)

    def test_tighter_precision_needs_more_exposure(self):
        assert exposure_needed(1e-3, relative_precision=0.1) > \
            exposure_needed(1e-3, relative_precision=0.5)


class TestTrendAndSpread:
    def test_trend_slope_sign(self):
        rising = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        falling = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0)]
        assert trend_slope(rising) > 0
        assert trend_slope(falling) < 0
        assert trend_slope([(0.0, 1.0)]) == 0.0

    def test_orders_of_magnitude(self):
        assert orders_of_magnitude_spread([1e-7, 1e-3]) == pytest.approx(4.0)
        assert orders_of_magnitude_spread([0.0, 1e-3]) == 0.0


class TestScreeningEconomics:
    def test_detection_probability_monotone_in_effort(self):
        cheap = ScreeningPolicy(period_days=7.0, corpus_ops=1e4)
        rich = ScreeningPolicy(period_days=7.0, corpus_ops=1e6)
        rate = 1e-6
        assert rich.detection_probability(rate) > cheap.detection_probability(rate)

    def test_stress_boost_shortens_detection(self):
        online = ScreeningPolicy(period_days=7.0, corpus_ops=1e5, env_boost=1.0)
        offline = ScreeningPolicy(period_days=7.0, corpus_ops=1e5, env_boost=10.0)
        rate = 1e-7
        assert offline.expected_days_to_detect(rate) < \
            online.expected_days_to_detect(rate)

    def test_undetectable_rate_is_infinite_wait(self):
        policy = ScreeningPolicy(period_days=7.0, corpus_ops=1e5)
        assert math.isinf(policy.expected_days_to_detect(0.0))

    def test_exposure_scales_with_latency(self):
        policy = ScreeningPolicy(period_days=30.0, corpus_ops=1e4)
        slow = exposure_before_detection(policy, 1e-7)
        fast = exposure_before_detection(
            ScreeningPolicy(period_days=1.0, corpus_ops=1e6), 1e-7
        )
        assert fast.corruptions_before_detection < slow.corruptions_before_detection

    def test_frontier_rows_complete(self):
        policies = [
            ScreeningPolicy(period_days=7.0, corpus_ops=1e5),
            ScreeningPolicy(period_days=30.0, corpus_ops=1e6, env_boost=5.0),
        ]
        rows = policy_frontier(policies, [1e-6, 1e-5, 1e-4])
        assert len(rows) == 2
        for row in rows:
            assert row["detectable_fraction"] > 0
            assert row["compute_cost_fraction"] > 0

    def test_false_positive_cost_scales(self):
        policy = ScreeningPolicy(period_days=7.0, corpus_ops=1e5)
        a = false_positive_cost(1e-6, policy, n_cores=1000, horizon_days=365.0)
        b = false_positive_cost(1e-5, policy, n_cores=1000, horizon_days=365.0)
        assert b == pytest.approx(10 * a)


class TestFigures:
    def test_normalize_series_first_nonzero_baseline(self):
        series = [(0.0, 0.0), (1.0, 2.0), (2.0, 4.0)]
        normalized = normalize_series(series)
        assert normalized[1][1] == pytest.approx(1.0)
        assert normalized[2][1] == pytest.approx(2.0)

    def test_render_series_contains_values(self):
        text = render_series([(0.0, 1.0), (30.0, 2.0)], "title")
        assert "title" in text and "t=" in text

    def test_render_fig1_has_both_series(self):
        auto = [(0.0, 0.001), (30.0, 0.002)]
        human = [(0.0, 0.001), (30.0, 0.001)]
        text = render_fig1(auto, human)
        assert "automatically-reported" in text
        assert "user-reported" in text
        assert "normalized" in text

    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_empty_table(self):
        text = render_table(["x"], [])
        assert "x" in text
