"""No-op-mode parity and the per-trial telemetry-leak regression.

Two invariants keep observability honest:

1. **Parity** — REPRO_OBS=off and on produce byte-identical campaign
   scorecards: instrumentation never touches RNG draws, control flow,
   or the unconditional forensics bookkeeping.
2. **No leak** — pool workers are long-lived, so per-trial counters
   must be reset at trial entry and merged exactly once on gather; the
   merged totals are independent of the worker count.  (Before the
   per-trial reset in ``run_trials``, a worker's counters accumulated
   across every trial it executed, overcounting by a worker-placement-
   dependent amount.)
"""

import json

import pytest

from repro import obs
from repro.engine.runner import run_trials


@pytest.fixture
def obs_state():
    """Save/restore the obs on/off switch around a test."""
    prior = obs.enabled()
    yield
    obs.set_enabled(prior)
    obs.metrics.reset()
    obs.tracer.reset()


def _serving_card(seed: int):
    from repro.analysis.experiments import _serving_campaign

    card, _events, _bad = _serving_campaign(
        "hardened", ticks=150, n_machines=4, cores_per_machine=4,
        defect_rate=0.05, seed=seed, onset_age=400.0,
    )
    return json.dumps(card.to_json(), sort_keys=True)


def _storage_card(seed: int):
    from repro.analysis.experiments import _storage_campaign

    card, _events, _bad = _storage_campaign(
        "protected", ticks=120, n_machines=4, cores_per_machine=4,
        defect_rate=0.05, seed=seed, onset_age=400.0,
    )
    return json.dumps(card.to_json(), sort_keys=True)


class TestNoOpModeParity:
    def test_serving_scorecard_identical_off_vs_on(self, obs_state):
        obs.set_enabled(False)
        off = _serving_card(seed=3)
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        on = _serving_card(seed=3)
        assert off == on

    def test_storage_scorecard_identical_off_vs_on(self, obs_state):
        obs.set_enabled(False)
        off = _storage_card(seed=3)
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        on = _storage_card(seed=3)
        assert off == on

    def test_forensics_summary_present_even_when_off(self, obs_state):
        # first-corruption tracking is campaign bookkeeping, not obs:
        # the timeline must survive REPRO_OBS=off
        obs.set_enabled(False)
        payload = json.loads(_serving_card(seed=0))
        assert payload["first_corrupt_tick"]
        assert payload["detection_latency_ms"]


def _counting_trial(trial):
    obs.metrics.counter("parity_trial_ops_total").inc(5)
    obs.metrics.histogram(
        "parity_trial_lat_ms", buckets=(1.0, 10.0)
    ).observe(float(trial.index))
    return trial.index


class TestTelemetryLeakRegression:
    """Merged totals must be exactly n_trials x per-trial, any workers."""

    N_TRIALS = 8

    def _run(self, workers: int) -> tuple[float, int]:
        obs.metrics.reset()
        obs.tracer.reset()
        run_trials(_counting_trial, self.N_TRIALS, seed=5, workers=workers)
        total = obs.metrics.counter("parity_trial_ops_total").value()
        hist = obs.metrics.histogram(
            "parity_trial_lat_ms", buckets=(1.0, 10.0)
        ).state()
        return total, hist.count

    def test_counters_reset_between_trials(self, obs_state):
        obs.set_enabled(True)
        total, observations = self._run(workers=1)
        assert total == 5.0 * self.N_TRIALS
        assert observations == self.N_TRIALS

    def test_totals_independent_of_worker_count(self, obs_state):
        obs.set_enabled(True)
        serial = self._run(workers=1)
        pooled = self._run(workers=4)
        assert serial == pooled == (5.0 * self.N_TRIALS, self.N_TRIALS)

    def test_parent_state_survives_fan_out(self, obs_state):
        # metrics recorded before the fan-out must not be clobbered by
        # the per-trial resets happening in (possibly this) process
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        obs.metrics.counter("parity_pre_existing_total").inc(3)
        run_trials(_counting_trial, 4, seed=5, workers=1)
        assert obs.metrics.counter("parity_pre_existing_total").value() == 3.0
        assert obs.metrics.counter("parity_trial_ops_total").value() == 20.0

    def test_off_mode_runs_plain_path(self, obs_state):
        obs.set_enabled(False)
        obs.metrics.reset()
        results = run_trials(_counting_trial, 4, seed=5, workers=1)
        assert results == [0, 1, 2, 3]
        assert obs.metrics.counter("parity_trial_ops_total").value() == 0.0


class TestAnalyzerPerTrialIsolation:
    """The analyzers' cached handles stay valid across registry resets."""

    def test_mce_analyzer_counts_survive_reset_cycle(self, obs_state):
        from repro.core.events import EventLog
        from repro.fleet.telemetry import MceLogAnalyzer, MceRecord

        obs.set_enabled(True)
        obs.metrics.reset()
        analyzer = MceLogAnalyzer()
        record = MceRecord(
            time_days=1.0, machine_id="m0", bank=0,
            core_id="m0/c0", corrected=False,
        )
        analyzer.analyze([record], EventLog())
        assert obs.metrics.counter(
            "telemetry_mce_records_total"
        ).value() == 1.0
        obs.metrics.reset()  # per-trial reset
        analyzer.analyze([record], EventLog())
        # handle cached at construction still writes post-reset
        assert obs.metrics.counter(
            "telemetry_mce_records_total"
        ).value() == 1.0
