"""Shared-memory fleet snapshots: round-trip, lifecycle, invariance.

The zero-copy hand-off contract: ``publish`` packs a
:class:`FleetColumns` into one ``/dev/shm`` segment, workers ``attach``
read-only views, and the parent's ``close`` unlinks the segment even
when workers crash — ``leaked_segments`` must come back empty after
every pool run, and results must be byte-identical for any worker
count.
"""

import numpy as np
import pytest

from repro.engine.runner import WorkerCrashError, run_fleet_trials
from repro.fleet import shm
from repro.fleet.columns import SNAPSHOT_FIELDS, FleetColumns
from repro.fleet.population import FleetBuilder


def _columns(n_machines=40, seed=11):
    return FleetBuilder(
        seed=seed, deployment_window=(-700.0, 0.0)
    ).build_columns(n_machines)


class TestRoundTrip:
    def test_attach_sees_identical_arrays(self):
        columns = _columns()
        snapshot = shm.publish(columns)
        try:
            attached = shm.attach(snapshot.handle)
            try:
                for name in SNAPSHOT_FIELDS:
                    np.testing.assert_array_equal(
                        getattr(attached.columns, name),
                        getattr(columns, name),
                    )
                assert list(attached.columns.machine_ids) == list(
                    columns.machine_ids
                )
                assert attached.columns.ground_truth_map() == (
                    columns.ground_truth_map()
                )
            finally:
                attached.close()
        finally:
            snapshot.close()

    def test_attached_views_are_read_only(self):
        snapshot = shm.publish(_columns())
        try:
            attached = shm.attach(snapshot.handle)
            try:
                assert attached.columns.read_only
                with pytest.raises(ValueError):
                    attached.columns.online[0] = False
            finally:
                attached.close()
        finally:
            snapshot.close()

    def test_defect_sidecar_survives_the_boundary(self):
        columns = _columns(seed=3)
        snapshot = shm.publish(columns)
        try:
            attached = shm.attach(snapshot.handle)
            try:
                for index in range(columns.n_mercurial):
                    assert tuple(
                        repr(d) for d in attached.columns.merc_defects(index)
                    ) == tuple(repr(d) for d in columns.merc_defects(index))
            finally:
                attached.close()
        finally:
            snapshot.close()

    def test_snapshot_bytes_reported(self):
        snapshot = shm.publish(_columns())
        try:
            assert snapshot.handle.snapshot_bytes > 0
        finally:
            snapshot.close()


class TestLifecycle:
    def test_close_unlinks_segment(self):
        snapshot = shm.publish(_columns())
        name = snapshot.handle.segment_name
        snapshot.close()
        assert name not in shm.leaked_segments()

    def test_double_close_is_a_no_op(self):
        snapshot = shm.publish(_columns())
        snapshot.close()
        snapshot.close()  # must not raise

    def test_attached_double_close_is_a_no_op(self):
        snapshot = shm.publish(_columns())
        try:
            attached = shm.attach(snapshot.handle)
            attached.close()
            attached.close()  # must not raise
        finally:
            snapshot.close()

    def test_attach_close_after_publisher_close(self):
        # A worker may outlive the parent's unlink: its mapping stays
        # valid until it closes, and its close never double-unlinks.
        snapshot = shm.publish(_columns())
        attached = shm.attach(snapshot.handle)
        snapshot.close()
        assert int(attached.columns.online.sum()) == attached.columns.n_cores
        attached.close()
        assert snapshot.handle.segment_name not in shm.leaked_segments()

    def test_context_manager(self):
        with shm.publish(_columns()) as snapshot:
            name = snapshot.handle.segment_name
            assert name in shm.leaked_segments()
        assert name not in shm.leaked_segments()


# Trial functions must live at module level for the pool to pickle.
def _count_online(trial, columns):
    return (trial.index, trial.seed, int(columns.online.sum()))


def _simulate(trial, columns):
    from repro.fleet.simulator import FleetSimulator, SimulatorConfig

    result = FleetSimulator(
        columns,
        config=SimulatorConfig(horizon_days=5.0, warmup_days=0.0),
        seed=trial.seed + 1,
    ).run()
    return (trial.index, len(result.events), sorted(result.flagged()))


def _crash(trial, columns):
    import os

    os._exit(3)


class TestRunFleetTrials:
    def test_worker_invariance(self):
        columns = _columns(n_machines=25)
        serial = run_fleet_trials(_count_online, columns, 4, seed=9, workers=1)
        pooled = run_fleet_trials(_count_online, columns, 4, seed=9, workers=2)
        assert serial == pooled

    def test_simulation_worker_invariance(self):
        columns = _columns(n_machines=25, seed=5)
        serial = run_fleet_trials(_simulate, columns, 3, seed=2, workers=1)
        pooled = run_fleet_trials(_simulate, columns, 3, seed=2, workers=3)
        assert serial == pooled

    def test_no_segment_leak_after_pool_run(self):
        columns = _columns(n_machines=10)
        run_fleet_trials(_count_online, columns, 4, seed=0, workers=2)
        assert shm.leaked_segments() == []

    def test_worker_crash_raises_and_cleans_up(self):
        columns = _columns(n_machines=10)
        with pytest.raises(WorkerCrashError, match="worker process"):
            run_fleet_trials(_crash, columns, 4, seed=0, workers=2)
        assert shm.leaked_segments() == []

    def test_nonstandard_ids_refuse_snapshot(self):
        machines, _ = FleetBuilder(
            seed=1, deployment_window=(-700.0, 0.0)
        ).build(3)
        for machine in machines:
            for core in machine.cores:
                core.core_id = "x-" + core.core_id
        adapted = FleetColumns.from_machines(machines)
        with pytest.raises(ValueError):
            shm.publish(adapted)
