"""Cluster-layer units: routers, retry budgets, tiers, autoscaling."""

import zlib

import numpy as np
import pytest

from repro.serving.cluster import (
    ROUTER_POLICIES,
    TIER_ORDER,
    Autoscaler,
    AutoscalerConfig,
    ConsistentHashRouter,
    DegradationPolicy,
    DegradationTier,
    LeastLoadedRouter,
    RetryBudget,
    RetryBudgetConfig,
    Shard,
    ShardedCluster,
    ShardRoundRobinRouter,
    stable_key_hash,
    stable_str_hash,
)
from repro.serving.robustness import BreakerConfig
from repro.serving.service import ServerReplica
from repro.silicon.core import Core


def _replica(replica_id, seed=0):
    core = Core(replica_id, rng=np.random.default_rng(seed))
    return ServerReplica(replica_id, core)


def _replicas(n, prefix="s0/r"):
    return [_replica(f"{prefix}{i}", seed=i) for i in range(n)]


class TestStableHashes:
    def test_key_hash_is_deterministic_and_spreads(self):
        assert stable_key_hash(42) == stable_key_hash(42)
        assert len({stable_key_hash(k) for k in range(200)}) == 200

    def test_str_hash_is_plain_crc32(self):
        # pinned to zlib so ring placement survives process boundaries
        assert stable_str_hash("s0/r0#3") == zlib.crc32(b"s0/r0#3")

    def test_neither_uses_pythons_salted_hash(self):
        # hash("x") varies per process; these two are pinned forever
        assert stable_key_hash(7) == 7191089600892374487
        assert stable_str_hash("abc") == 891568578


class TestRouterRegistry:
    def test_all_three_policies_are_registered(self):
        assert set(ROUTER_POLICIES) == {
            "round-robin", "consistent-hash", "least-loaded"
        }
        for cls in ROUTER_POLICIES.values():
            router = cls(_replicas(2))
            assert router.pick(route_key=1) is not None


class TestShardRoundRobinRouter:
    def test_cycles_and_counts_assignments(self):
        router = ShardRoundRobinRouter(_replicas(3))
        picks = [router.pick().replica_id for _ in range(6)]
        assert picks == ["s0/r0", "s0/r1", "s0/r2"] * 2
        assert all(r.assigned == 2 for r in router.replicas)

    def test_returns_none_when_everyone_is_excluded(self):
        router = ShardRoundRobinRouter(_replicas(2))
        assert router.pick(exclude_core_ids={"s0/r0", "s0/r1"}) is None


class TestConsistentHashRouter:
    def test_same_key_always_lands_on_the_same_replica(self):
        router = ConsistentHashRouter(_replicas(4))
        owners = {router.pick(route_key=77).replica_id for _ in range(10)}
        assert len(owners) == 1

    def test_exclusion_walks_to_the_next_distinct_replica(self):
        router = ConsistentHashRouter(_replicas(4))
        primary = router.pick(route_key=77)
        fallback = router.pick(
            exclude_core_ids={primary.core_id}, route_key=77
        )
        assert fallback is not None
        assert fallback.replica_id != primary.replica_id
        # the fallback is stable too
        again = router.pick(
            exclude_core_ids={primary.core_id}, route_key=77
        )
        assert again.replica_id == fallback.replica_id

    def test_fully_excluded_ring_returns_none(self):
        router = ConsistentHashRouter(_replicas(2))
        assert router.pick(
            exclude_core_ids={"s0/r0", "s0/r1"}, route_key=1
        ) is None

    def test_offline_replicas_are_skipped(self):
        router = ConsistentHashRouter(_replicas(3))
        owner = router.pick(route_key=5)
        owner.core.set_online(False)
        rerouted = router.pick(route_key=5)
        assert rerouted is not None
        assert rerouted.replica_id != owner.replica_id

    def test_removal_only_remaps_the_departed_replicas_keys(self):
        keys = list(range(300))
        router = ConsistentHashRouter(_replicas(5))
        before = {k: router.pick(route_key=k).replica_id for k in keys}
        victim = next(
            r for r in router.replicas if r.replica_id == "s0/r2"
        )
        router.remove(victim)
        after = {k: router.pick(route_key=k).replica_id for k in keys}
        for k in keys:
            if before[k] != "s0/r2":
                assert after[k] == before[k]      # survivors keep their keys
            else:
                assert after[k] != "s0/r2"        # orphans land elsewhere

    def test_adding_a_replica_gives_it_some_keys(self):
        router = ConsistentHashRouter(_replicas(3))
        router.add(_replica("s0/r9", seed=9))
        owners = {
            router.pick(route_key=k).replica_id for k in range(500)
        }
        assert "s0/r9" in owners


class TestLeastLoadedRouter:
    def test_routes_to_the_least_assigned_replica(self):
        router = LeastLoadedRouter(_replicas(3))
        router.replicas[0].assigned = 5
        router.replicas[1].assigned = 1
        router.replicas[2].assigned = 3
        assert router.pick().replica_id == "s0/r1"

    def test_tie_breaks_on_list_position(self):
        router = LeastLoadedRouter(_replicas(3))
        assert router.pick().replica_id == "s0/r0"

    def test_spreads_a_burst_evenly(self):
        router = LeastLoadedRouter(_replicas(3))
        for _ in range(9):
            router.pick()
        assert [r.assigned for r in router.replicas] == [3, 3, 3]

    def test_respects_exclusions_and_liveness(self):
        router = LeastLoadedRouter(_replicas(3))
        router.replicas[0].core.set_online(False)
        picked = router.pick(exclude_core_ids={"s0/r1"})
        assert picked.replica_id == "s0/r2"


class TestRetryBudget:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RetryBudgetConfig(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudgetConfig(burst=0.0)

    def test_starts_with_a_full_burst(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.1, burst=3.0))
        assert budget.try_spend()
        assert budget.try_spend()
        assert budget.try_spend()
        assert not budget.try_spend()             # bucket dry
        assert budget.spent == 3
        assert budget.exhausted == 1

    def test_deposits_accrue_at_the_configured_ratio(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.1, burst=5.0))
        for _ in range(5):
            budget.try_spend()
        assert not budget.try_spend()
        budget.deposit(admitted=10)               # earns exactly one token
        assert budget.try_spend()
        assert not budget.try_spend()

    def test_deposits_cap_at_the_burst(self):
        budget = RetryBudget(RetryBudgetConfig(ratio=0.5, burst=2.0))
        budget.deposit(admitted=1000)
        assert budget.tokens == 2.0


class TestDegradationPolicy:
    def test_thresholds_are_inclusive_lower_bounds(self):
        policy = DegradationPolicy(
            shed_at=0.25, serve_stale_at=0.5, fail_closed_at=0.9
        )
        assert policy.tier_for(0.0) is DegradationTier.NORMAL
        assert policy.tier_for(0.2499) is DegradationTier.NORMAL
        assert policy.tier_for(0.25) is DegradationTier.SHED
        assert policy.tier_for(0.4999) is DegradationTier.SHED
        assert policy.tier_for(0.5) is DegradationTier.SERVE_STALE
        assert policy.tier_for(0.8999) is DegradationTier.SERVE_STALE
        assert policy.tier_for(0.9) is DegradationTier.FAIL_CLOSED
        assert policy.tier_for(1.0) is DegradationTier.FAIL_CLOSED

    def test_rejects_misordered_thresholds(self):
        with pytest.raises(ValueError):
            DegradationPolicy(shed_at=0.6, serve_stale_at=0.5)
        with pytest.raises(ValueError):
            DegradationPolicy(shed_at=0.0)

    def test_tier_order_escalates_along_the_ladder(self):
        ladder = [
            DegradationTier.NORMAL, DegradationTier.SHED,
            DegradationTier.SERVE_STALE, DegradationTier.FAIL_CLOSED,
        ]
        assert [TIER_ORDER[t] for t in ladder] == [0, 1, 2, 3]


def _shard(n_replicas=3, breaker=None, **kwargs):
    return Shard(
        "shard/0", ShardRoundRobinRouter(_replicas(n_replicas)),
        breaker, **kwargs,
    )


class TestAutoscaler:
    def _hot_shard(self, n=3):
        shard = _shard(n)
        shard.utilization = 0.95
        return shard

    def test_scales_up_on_high_utilization(self):
        scaler = Autoscaler(AutoscalerConfig(max_replicas=6))
        assert scaler.decide(self._hot_shard(), tick=0) == 1
        assert scaler.scale_ups == 1

    def test_cooldown_blocks_back_to_back_actions(self):
        scaler = Autoscaler(AutoscalerConfig(cooldown_ticks=25))
        shard = self._hot_shard()
        assert scaler.decide(shard, tick=0) == 1
        assert scaler.decide(shard, tick=10) == 0
        assert scaler.decide(shard, tick=24) == 0
        assert scaler.decide(shard, tick=25) == 1

    def test_never_scales_past_the_band(self):
        scaler = Autoscaler(AutoscalerConfig(min_replicas=2, max_replicas=3))
        assert scaler.decide(self._hot_shard(n=3), tick=0) == 0
        cold = _shard(2)
        cold.utilization = 0.05
        assert scaler.decide(cold, tick=0) == 0

    def test_scales_down_when_idle(self):
        scaler = Autoscaler(AutoscalerConfig(min_replicas=2))
        shard = _shard(4)
        shard.utilization = 0.1
        assert scaler.decide(shard, tick=0) == -1
        assert scaler.scale_downs == 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(scale_up_at=0.3, scale_down_at=0.5)
        with pytest.raises(ValueError):
            AutoscalerConfig(min_replicas=4, max_replicas=2)
        with pytest.raises(ValueError):
            AutoscalerConfig(smoothing=0.0)


class TestShard:
    def test_utilization_is_ewma_smoothed(self):
        shard = _shard(smoothing=0.5)
        shard.note_utilization(admitted=6, capacity=6)
        assert shard.utilization == 0.5
        shard.note_utilization(admitted=6, capacity=6)
        assert shard.utilization == 0.75

    def test_capacity_loss_tracks_dark_replicas(self):
        shard = _shard(3)
        assert shard.capacity_loss_fraction() == 0.0
        shard.router.replicas[0].core.set_online(False)
        assert shard.capacity_loss_fraction() == pytest.approx(1 / 3)

    def test_open_breaker_fraction_counts_blocked_cores(self):
        shard = _shard(3, breaker=BreakerConfig(
            failure_threshold=1, window_ms=100.0, cooldown_ms=1000.0
        ))
        assert shard.open_breaker_fraction(0.0) == 0.0
        shard.breakers.record_failure("s0/r1", 1.0, "checksum mismatch")
        assert shard.open_breaker_fraction(2.0) == pytest.approx(1 / 3)

    def test_no_breakers_means_no_breaker_distress(self):
        shard = _shard(3, breaker=None)
        assert shard.breakers is None
        assert shard.open_breaker_fraction(0.0) == 0.0


class TestShardedCluster:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValueError):
            ShardedCluster([])

    def test_key_to_shard_assignment_is_stable_and_covers_all(self):
        shards = [
            Shard(f"shard/{i}",
                  ShardRoundRobinRouter(_replicas(2, prefix=f"s{i}/r")),
                  None)
            for i in range(3)
        ]
        cluster = ShardedCluster(shards)
        first = {k: cluster.shard_for(k).shard_id for k in range(100)}
        again = {k: cluster.shard_for(k).shard_id for k in range(100)}
        assert first == again
        assert set(first.values()) == {"shard/0", "shard/1", "shard/2"}

    def test_distress_is_the_worst_of_the_three_signals(self):
        shards = [
            Shard(f"shard/{i}",
                  ShardRoundRobinRouter(_replicas(2, prefix=f"s{i}/r")),
                  None)
            for i in range(2)
        ]
        cluster = ShardedCluster(shards)
        assert cluster.distress(shards[0], 0.0) == 0.0
        # kill one of shard 0's two replicas: 50% capacity loss there,
        # no breaker signal anywhere
        shards[0].router.replicas[0].core.set_online(False)
        assert cluster.distress(shards[0], 0.0) == pytest.approx(0.5)
        assert cluster.distress(shards[1], 0.0) == 0.0

    def test_live_capacity_sums_across_shards(self):
        shards = [
            Shard(f"shard/{i}",
                  ShardRoundRobinRouter(_replicas(3, prefix=f"s{i}/r")),
                  None)
            for i in range(2)
        ]
        cluster = ShardedCluster(shards)
        assert cluster.live_capacity(per_replica_per_tick=2) == 12
        shards[1].router.replicas[0].core.set_online(False)
        assert cluster.live_capacity(per_replica_per_tick=2) == 10
