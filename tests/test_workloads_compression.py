"""LZ codec."""

import numpy as np
import pytest

from repro.silicon.core import Core
from repro.silicon.catalog import named_case
from repro.workloads.compression import (
    CorruptStreamError,
    compress,
    compression_workload,
    decompress,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abcabcabcabcabc",
            b"x" * 500,
            bytes(range(256)),
            b"the quick brown fox jumps over the lazy dog " * 10,
        ],
    )
    def test_healthy_roundtrip(self, healthy_core, data):
        blob = compress(healthy_core, data)
        assert decompress(healthy_core, blob) == data

    def test_random_data_roundtrip(self, healthy_core, rng):
        data = rng.integers(0, 256, size=700, dtype=np.uint8).tobytes()
        assert decompress(healthy_core, compress(healthy_core, data)) == data

    def test_repetitive_data_actually_compresses(self, healthy_core):
        data = b"ABABABABAB" * 60
        blob = compress(healthy_core, data)
        assert len(blob) < len(data)

    def test_overlapping_match_semantics(self, healthy_core):
        data = b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"  # match overlaps itself
        blob = compress(healthy_core, data)
        assert decompress(healthy_core, blob) == data

    def test_window_validation(self, healthy_core):
        with pytest.raises(ValueError):
            compress(healthy_core, b"abc", window=0)


class TestCorruptStreams:
    def test_truncated_literal_rejected(self, healthy_core):
        with pytest.raises(CorruptStreamError):
            decompress(healthy_core, bytes([0x00]))

    def test_bad_tag_rejected(self, healthy_core):
        with pytest.raises(CorruptStreamError):
            decompress(healthy_core, bytes([0x77, 0x00]))

    def test_out_of_range_match_rejected(self, healthy_core):
        # match offset 200 with no prior output
        with pytest.raises(CorruptStreamError):
            decompress(healthy_core, bytes([0x01, 199, 0]))


class TestDefectiveCore:
    def test_comparator_defect_changes_compressed_output(self, reference_core):
        core = Core(
            "t/cmp", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(3),
        )
        data = b"compressible compressible compressible data!" * 8
        healthy_blob = compress(reference_core, data)
        defective_blob = compress(core, data)
        assert defective_blob != healthy_blob
        # The stream is still *self-consistent*: a healthy decompressor
        # reproduces the input even from a weirdly-compressed stream,
        # unless the comparator corrupted lengths into wrong matches.
        restored = decompress(reference_core, defective_blob)
        # It either round-trips (suboptimal matches) or differs
        # (silent corruption); both are possible — assert no crash.
        assert isinstance(restored, bytes)

    def test_workload_reports_crash_as_crash(self):
        core = Core(
            "t/crash", defects=named_case("string_bit_flipper"),
            rng=np.random.default_rng(5),
        )
        results = [
            compression_workload(core, bytes([i % 256]) * 400)
            for i in range(8)
        ]
        # The bit flipper hits copy/load paths: at least one run must be
        # caught by the round-trip check or crash outright.
        assert any(r.app_detected or r.crashed for r in results)
