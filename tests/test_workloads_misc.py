"""Copying, vector, sorting workloads and the mix generator."""

import numpy as np
import pytest

from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.workloads.base import (
    OpCountingCore,
    digest_bytes,
    measure_op_mix,
    run_with_oracle,
)
from repro.workloads.copying import copy_bytes, copy_words, copying_workload
from repro.workloads.generator import (
    STANDARD_MIX,
    WorkloadMixer,
    blended_op_mix,
    spec_by_name,
)
from repro.workloads.sorting import is_sorted_on, merge_sort, quicksort
from repro.workloads.vectorops import axpy, dot, vector_workload, vsum, xor_fold


class TestCopying:
    def test_copy_words_identity_on_healthy(self, healthy_core, rng):
        words = [int(x) for x in rng.integers(0, 2**60, 300)]
        assert copy_words(healthy_core, words) == words

    def test_copy_bytes_roundtrip(self, healthy_core):
        data = b"some byte payload of odd length!!!?"
        assert copy_bytes(healthy_core, data) == data

    def test_chunk_validation(self, healthy_core):
        with pytest.raises(ValueError):
            copy_words(healthy_core, [1], chunk=0)

    def test_shared_logic_defect_corrupts_copies(self):
        core = Core(
            "cp/bad", defects=named_case("copy_vector_shared"),
            rng=np.random.default_rng(0),
        )
        detected = 0
        for seed in range(12):
            words = [int(x) for x in
                     np.random.default_rng(seed).integers(0, 2**60, 512)]
            detected += copying_workload(core, words).app_detected
        assert detected > 0


class TestVectorOps:
    def test_vsum_matches_python_sum(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**40, 100)]
        assert vsum(healthy_core, values) == sum(values)

    def test_dot_matches_python(self, healthy_core, rng):
        xs = [int(x) for x in rng.integers(0, 2**20, 64)]
        ys = [int(x) for x in rng.integers(0, 2**20, 64)]
        assert dot(healthy_core, xs, ys) == sum(a * b for a, b in zip(xs, ys))

    def test_axpy(self, healthy_core):
        assert axpy(healthy_core, 3, [1, 2], [10, 20]) == [13, 26]

    def test_xor_fold(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**60, 50)]
        expected = 0
        for v in values:
            expected ^= v
        assert xor_fold(healthy_core, values) == expected

    def test_length_mismatch_rejected(self, healthy_core):
        with pytest.raises(ValueError):
            dot(healthy_core, [1], [1, 2])

    def test_vector_workload_self_check_catches_vector_defect(self):
        # A vector-*unit* defect: the dot product's vector path corrupts
        # while the scalar recompute stays clean, so the self-check
        # fires.  (A SHUFFLE_NETWORK defect would not do: VDOT's
        # datapath is multiplier+adder, not the shuffle network.)
        from repro.silicon.defects import StuckBitDefect
        from repro.silicon.units import FunctionalUnit

        core = Core(
            "v/bad",
            defects=[StuckBitDefect("d", bit=5, base_rate=2e-2,
                                    unit=FunctionalUnit.VECTOR)],
            rng=np.random.default_rng(1),
        )
        detections = sum(
            vector_workload(
                core,
                [int(x) for x in np.random.default_rng(s).integers(0, 2**30, 256)],
            ).app_detected
            for s in range(10)
        )
        assert detections > 0


class TestSorting:
    def test_merge_sort_correct(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**48, 300)]
        assert merge_sort(healthy_core, values) == sorted(values)

    def test_quicksort_correct(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**48, 300)]
        assert quicksort(healthy_core, values) == sorted(values)

    def test_is_sorted_on_healthy(self, healthy_core):
        assert is_sorted_on(healthy_core, [1, 2, 3])
        assert not is_sorted_on(healthy_core, [3, 2, 1])

    def test_comparator_defect_misorders(self, rng):
        core = Core(
            "s/bad", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(2),
        )
        values = [int(x) for x in rng.integers(0, 2**48, 400)]
        assert merge_sort(core, values) != sorted(values)


class TestBase:
    def test_op_counting_core_tallies(self, healthy_core):
        counting = OpCountingCore(healthy_core)
        counting.execute("add", 1, 2)
        counting.execute("add", 3, 4)
        counting.execute("mul", 5, 6)
        assert counting.counts["add"] == 2
        assert counting.op_mix()["mul"] == pytest.approx(1 / 3)

    def test_measure_op_mix_normalizes(self):
        mix = measure_op_mix(lambda core: core.execute("add", 1, 1))
        assert mix == {"add": 1.0}

    def test_digest_bytes_sensitivity(self):
        assert digest_bytes(b"a") != digest_bytes(b"b")

    def test_run_with_oracle_flags_silent_corruption(self, reference_core):
        from repro.workloads.copying import unchecked_copy_workload

        core = Core(
            "o/bad", defects=named_case("copy_vector_shared"),
            rng=np.random.default_rng(3),
        )
        for seed in range(12):
            words = [int(x) for x in
                     np.random.default_rng(seed).integers(0, 2**60, 512)]
            comparison = run_with_oracle(
                lambda c, w=words: unchecked_copy_workload(c, w),
                core, reference_core,
            )
            if comparison.silent_corruption:
                return
        pytest.fail("defect never corrupted an unchecked copy")


class TestGenerator:
    def test_weights_positive_and_named(self):
        assert all(spec.weight > 0 for spec in STANDARD_MIX)
        assert len({spec.name for spec in STANDARD_MIX}) == len(STANDARD_MIX)

    def test_spec_by_name(self):
        assert spec_by_name("crypto").name == "crypto"
        with pytest.raises(KeyError):
            spec_by_name("nope")

    def test_build_is_deterministic_per_seed(self, healthy_core, reference_core):
        spec = spec_by_name("hashing")
        a = spec.build(99)(healthy_core)
        b = spec.build(99)(reference_core)
        assert a.output_digest == b.output_digest

    def test_blended_mix_sums_to_one(self):
        mix = blended_op_mix()
        assert sum(mix.values()) == pytest.approx(1.0, abs=1e-6)

    def test_mixer_samples_all_specs_eventually(self):
        mixer = WorkloadMixer(rng=np.random.default_rng(0))
        names = {mixer.sample()[0].name for _ in range(300)}
        assert names == {spec.name for spec in STANDARD_MIX}

    def test_mixer_run_random(self, healthy_core):
        mixer = WorkloadMixer(rng=np.random.default_rng(1))
        result = mixer.run_random(healthy_core)
        assert not result.crashed
