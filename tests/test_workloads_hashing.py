"""Hash workloads."""

import numpy as np

from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit
from repro.workloads.hashing import crc64, fnv1a, hash_stream, hashing_workload, mix64


class TestGoldenHashes:
    def test_fnv1a_reference_value(self, healthy_core):
        # Independently computed FNV-1a 64 of b"a".
        assert fnv1a(healthy_core, b"a") == 0xAF63DC4C8601EC8C

    def test_fnv1a_empty_is_offset_basis(self, healthy_core):
        assert fnv1a(healthy_core, b"") == 0xCBF29CE484222325

    def test_crc64_deterministic(self, healthy_core, reference_core):
        data = b"the quick brown fox"
        assert crc64(healthy_core, data) == crc64(reference_core, data)

    def test_crc64_detects_single_bit_change(self, healthy_core):
        a = crc64(healthy_core, b"hello world")
        b = crc64(healthy_core, b"hello worle")
        assert a != b

    def test_mix64_is_bijective_looking(self, healthy_core):
        outputs = {mix64(healthy_core, x) for x in range(200)}
        assert len(outputs) == 200

    def test_hash_stream_matches_pointwise(self, healthy_core):
        seeds = [1, 2, 3]
        assert hash_stream(healthy_core, seeds) == [
            mix64(healthy_core, s) for s in seeds
        ]


class TestHashingWorkload:
    def test_healthy_run_clean(self, healthy_core):
        result = hashing_workload(healthy_core, b"payload" * 20)
        assert not result.app_detected
        assert not result.crashed
        assert result.units == 140

    def test_intermittent_defect_detected_by_double_compute(self):
        core = Core(
            "t/bad",
            defects=[
                StuckBitDefect("d", bit=9, base_rate=5e-3,
                               unit=FunctionalUnit.MUL_DIV)
            ],
            rng=np.random.default_rng(1),
        )
        detections = sum(
            hashing_workload(core, bytes([i]) * 300).app_detected
            for i in range(10)
        )
        assert detections >= 1

    def test_output_digest_differs_on_corruption(self, reference_core):
        core = Core(
            "t/bad2",
            defects=[
                StuckBitDefect("d", bit=3, base_rate=1.0,
                               unit=FunctionalUnit.MUL_DIV)
            ],
            rng=np.random.default_rng(2),
        )
        good = hashing_workload(reference_core, b"data")
        bad = hashing_workload(core, b"data")
        assert good.output_digest != bad.output_digest
