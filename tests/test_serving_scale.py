"""E17 end-to-end: the grid, degradation semantics, worker invariance."""

import json

import pytest

from repro import obs
from repro.analysis.experiments import run_serve_at_scale
from repro.chaos import ChaosKind, ChaosSchedule
from repro.serving import (
    DegradationTier,
    ScaleConfig,
    ScaleHardening,
    ServeScaleCampaign,
    build_scale_fleet,
)
from repro.serving.service import Request, ResponseStatus

TICKS = 150


def _campaign(hardening, ticks=TICKS, prevalence=0.2, seed=3):
    machines, bad_core_ids = build_scale_fleet(
        prevalence=prevalence, seed=7
    )
    campaign = ServeScaleCampaign(
        machines, ScaleConfig(ticks=ticks), hardening, seed=seed
    )
    shard_loss = [
        r.core_id for r in campaign.cluster.shards[0].router.replicas
    ]
    storm = [
        r.core_id for r in campaign.cluster.shards[1].router.replicas
        if r.core_id not in bad_core_ids
    ][:2]
    campaign.chaos = ChaosSchedule.serve_scale(
        bad_core_ids, shard_loss, storm, ticks
    )
    return campaign, bad_core_ids


class TestScaleFleet:
    def test_bad_core_count_scales_with_prevalence(self):
        _, low = build_scale_fleet(prevalence=0.1, seed=7)
        _, mid = build_scale_fleet(prevalence=0.2, seed=7)
        _, high = build_scale_fleet(prevalence=0.4, seed=7)
        assert len(low) == 2 and len(mid) == 3 and len(high) == 6

    def test_higher_prevalence_strictly_grows_the_bad_set(self):
        # nested fleets: the grid compares prevalence levels against
        # supersets, never re-rolled populations
        _, low = build_scale_fleet(prevalence=0.1, seed=7)
        _, high = build_scale_fleet(prevalence=0.4, seed=7)
        assert set(low) < set(high)

    def test_at_least_one_bad_core_even_at_tiny_prevalence(self):
        _, bad = build_scale_fleet(prevalence=0.001, seed=7)
        assert len(bad) == 1


class TestScaleHardening:
    def test_baseline_turns_everything_off(self):
        arm = ScaleHardening.baseline()
        assert not arm.validate
        for knob in ("retry", "retry_budget", "hedge", "breaker",
                     "shed", "degradation", "autoscale"):
            assert getattr(arm, knob) is None
        assert arm.router_policy == "round-robin"

    def test_middle_rung_has_budgeted_retries_but_no_hedging(self):
        arm = ScaleHardening.retries_breakers()
        assert arm.validate
        assert arm.retry is not None and arm.retry_budget is not None
        assert arm.breaker is not None
        assert arm.hedge is None and arm.degradation is None
        assert arm.autoscale is None

    def test_full_turns_everything_on(self):
        arm = ScaleHardening.full()
        for knob in ("retry", "retry_budget", "hedge", "breaker",
                     "shed", "degradation", "autoscale"):
            assert getattr(arm, knob) is not None

    def test_unknown_router_policy_is_rejected(self):
        with pytest.raises(ValueError):
            ScaleHardening(router_policy="random")


class TestServeScaleCampaign:
    def test_full_hardening_beats_the_baseline_on_escapes(self):
        naive, _ = _campaign(ScaleHardening.baseline())
        full, _ = _campaign(ScaleHardening.full())
        naive_card = naive.run()
        full_card = full.run()
        assert naive_card.corrupt_escapes > 0
        assert full_card.corrupt_escapes < naive_card.corrupt_escapes
        assert full_card.corrupt_caught > 0
        assert full_card.breaker_trips > 0

    def test_hedges_fire_and_are_logged(self):
        full, _ = _campaign(ScaleHardening.full())
        card = full.run()
        assert card.hedges > 0
        assert card.hedges_won <= card.hedges
        from repro.core.events import EventKind
        fired = [
            e for e in full.events if e.kind is EventKind.HEDGE_FIRED
        ]
        assert len(fired) == card.hedges

    def test_same_seed_is_byte_identical(self):
        first, _ = _campaign(ScaleHardening.full(), seed=11)
        second, _ = _campaign(ScaleHardening.full(), seed=11)
        a = json.dumps(first.run().to_json(), sort_keys=True)
        b = json.dumps(second.run().to_json(), sort_keys=True)
        assert a == b

    def test_obs_on_and_off_produce_identical_scorecards(self):
        prior = obs.enabled()
        try:
            obs.set_enabled(False)
            off, _ = _campaign(ScaleHardening.full(), ticks=100)
            off_json = json.dumps(off.run().to_json(), sort_keys=True)
            obs.set_enabled(True)
            obs.metrics.reset()
            obs.tracer.reset()
            on, _ = _campaign(ScaleHardening.full(), ticks=100)
            on_json = json.dumps(on.run().to_json(), sort_keys=True)
        finally:
            obs.set_enabled(prior)
            obs.metrics.reset()
            obs.tracer.reset()
        assert off_json == on_json

    def test_serve_stale_tier_answers_from_cache_without_a_core(self):
        campaign, _ = _campaign(ScaleHardening.full())
        shard = campaign.cluster.shards[0]
        shard.tier = DegradationTier.SERVE_STALE
        shard.stale_cache[123] = b"cached-bytes"
        request = Request(
            request_id=0, payload=b"fresh-bytes!", deadline_ms=30.0,
            route_key=123, cohort="interactive",
        )
        response = campaign._serve_one(shard, request, tick=0, now_ms=0.0)
        assert response.stale
        assert response.payload == b"cached-bytes"
        assert campaign.scorecard.stale_served == 1
        # labelled degradation is not silent corruption, nor fresh OK
        campaign._score(request, response)
        assert campaign.scorecard.ok == 0
        assert campaign.scorecard.corrupt_escapes == 0

    def test_stale_cache_miss_falls_through_to_a_live_attempt(self):
        campaign, _ = _campaign(ScaleHardening.full())
        shard = campaign.cluster.shards[0]
        shard.tier = DegradationTier.SERVE_STALE
        request = Request(
            request_id=0, payload=b"fresh-bytes!", deadline_ms=30.0,
            route_key=999_999, cohort="interactive",
        )
        response = campaign._serve_one(shard, request, tick=0, now_ms=0.0)
        assert not response.stale
        assert response.status is ResponseStatus.OK

    def test_fail_closed_refuses_rather_than_risking_wrong_bytes(self):
        campaign, _ = _campaign(ScaleHardening.full(), ticks=100)
        for shard in campaign.cluster.shards:
            shard.tier = DegradationTier.FAIL_CLOSED
        # pin the ladder shut: distress stays artificially maximal
        campaign.cluster.distress = lambda shard, now_ms: 1.0
        card = campaign.run()
        assert card.fail_closed > 0
        assert card.ok == 0
        assert card.corrupt_escapes == 0


class TestServeScaleChaos:
    def test_serve_scale_script_covers_the_scripted_faults(self):
        schedule = ChaosSchedule.serve_scale(
            ["bad0", "bad1"], ["s0a", "s0b"], ["v0", "v1"], 600
        )
        kinds = [a.kind for a in schedule.actions]
        assert kinds.count(ChaosKind.ACTIVATE_DEFECT) == 2
        assert kinds.count(ChaosKind.CRASH_CORE) == 2   # the whole shard
        assert kinds.count(ChaosKind.MACHINE_CHECK_BURST) == 2
        assert ChaosKind.TRAFFIC_BURST in kinds
        ticks = [a.at_tick for a in schedule.actions]
        assert ticks == sorted(ticks)
        assert all(0 < t < 600 for t in ticks)


class TestServeAtScaleGrid:
    def test_grid_shape_and_hardening_wins(self):
        result = run_serve_at_scale(
            ticks=120, prevalences=(0.1, 0.4), seed=0, workers=1
        )
        assert result["prevalences"] == ["0.1", "0.4"]
        assert result["arms"] == ["baseline", "retries_breakers", "full"]
        for key in result["prevalences"]:
            cards = result["grid"][key]
            assert set(cards) == set(result["arms"])
            comp = result["comparisons"][key]
            assert comp["escape_rate_full"] <= comp["escape_rate_baseline"]
            assert comp["n_bad_cores"] >= 1
        assert result["hardening_wins"]
        assert "E17" in result["rendered"]

    def test_scorecard_is_invariant_to_the_worker_count(self):
        # the satellite-3 pin: fan-out must not perturb a single byte
        def fingerprint(result):
            return json.dumps(
                {
                    prev: {
                        arm: card.to_json() for arm, card in arms.items()
                    }
                    for prev, arms in result["grid"].items()
                },
                sort_keys=True,
            )

        serial = run_serve_at_scale(
            ticks=120, prevalences=(0.1, 0.2), seed=5, workers=1
        )
        fanned = run_serve_at_scale(
            ticks=120, prevalences=(0.1, 0.2), seed=5, workers=2
        )
        assert fingerprint(serial) == fingerprint(fanned)
