"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.silicon.core import Core
from repro.silicon.golden import MASK64, golden_execute
from repro.silicon.units import Op
from repro.workloads.base import digest_ints
from repro.workloads.compression import compress, decompress
from repro.workloads.copying import copy_bytes
from repro.workloads.crypto import decrypt_ecb, encrypt_ecb
from repro.workloads.database import BTreeIndex
from repro.workloads.hashing import crc64, fnv1a
from repro.workloads.sorting import merge_sort, quicksort

u64 = st.integers(min_value=0, max_value=MASK64)
small_bytes = st.binary(min_size=0, max_size=300)


def _core(seed=0):
    return Core("prop/h", rng=np.random.default_rng(seed))


class TestGoldenAlgebra:
    @given(a=u64, b=u64)
    def test_add_commutes(self, a, b):
        assert golden_execute(Op.ADD, a, b) == golden_execute(Op.ADD, b, a)

    @given(a=u64, b=u64)
    def test_xor_self_inverse(self, a, b):
        assert golden_execute(Op.XOR, golden_execute(Op.XOR, a, b), b) == a

    @given(a=u64)
    def test_not_is_involution(self, a):
        assert golden_execute(Op.NOT, golden_execute(Op.NOT, a)) == a

    @given(a=u64, b=st.integers(min_value=0, max_value=63))
    def test_rotl_reversible(self, a, b):
        rotated = golden_execute(Op.ROTL, a, b)
        assert golden_execute(Op.ROTL, rotated, (64 - b) % 64) == a

    @given(a=u64, b=st.integers(min_value=1, max_value=MASK64))
    def test_div_mod_identity(self, a, b):
        quotient = golden_execute(Op.DIV, a, b)
        remainder = golden_execute(Op.MOD, a, b)
        assert quotient * b + remainder == a

    @given(a=u64, b=u64)
    def test_cmp_antisymmetric(self, a, b):
        forward = golden_execute(Op.CMP, a, b)
        backward = golden_execute(Op.CMP, b, a)
        assert (forward, backward) in ((0, 0), (1, 2), (2, 1))

    @given(v=st.lists(u64, min_size=1, max_size=16))
    def test_copy_identity(self, v):
        assert golden_execute(Op.COPY, tuple(v)) == tuple(v)

    @given(a=st.integers(min_value=0, max_value=255),
           b=st.integers(min_value=0, max_value=255))
    def test_gfmul_commutes(self, a, b):
        assert golden_execute(Op.GFMUL, a, b) == golden_execute(Op.GFMUL, b, a)


class TestWorkloadRoundTrips:
    @settings(max_examples=30, deadline=None)
    @given(data=small_bytes)
    def test_compression_roundtrip(self, data):
        core = _core()
        assert decompress(core, compress(core, data)) == data

    @settings(max_examples=20, deadline=None)
    @given(data=st.binary(min_size=0, max_size=64),
           key=st.binary(min_size=16, max_size=16))
    def test_aes_roundtrip(self, data, key):
        core = _core()
        assert decrypt_ecb(core, encrypt_ecb(core, data, key), key) == data

    @settings(max_examples=30, deadline=None)
    @given(data=small_bytes)
    def test_copy_bytes_identity(self, data):
        assert copy_bytes(_core(), data) == data

    @settings(max_examples=30, deadline=None)
    @given(data=small_bytes)
    def test_hashes_deterministic(self, data):
        core_a, core_b = _core(1), _core(2)
        assert fnv1a(core_a, data) == fnv1a(core_b, data)
        assert crc64(core_a, data) == crc64(core_b, data)


class TestSortingProperties:
    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(u64, max_size=120))
    def test_merge_sort_matches_sorted(self, values):
        assert merge_sort(_core(), values) == sorted(values)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(u64, max_size=120))
    def test_quicksort_matches_sorted(self, values):
        assert quicksort(_core(), values) == sorted(values)


class TestBTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=2**40),
                         unique=True, max_size=150))
    def test_insert_then_get_everything(self, keys):
        index = BTreeIndex(_core())
        for position, key in enumerate(keys):
            index.insert(key, position)
        for position, key in enumerate(keys):
            assert index.get(key) == position

    @settings(max_examples=30, deadline=None)
    @given(keys=st.lists(st.integers(min_value=0, max_value=2**40),
                         unique=True, max_size=150))
    def test_inorder_traversal_sorted(self, keys):
        index = BTreeIndex(_core())
        for key in keys:
            index.insert(key, 0)
        assert [k for k, _ in index.items()] == sorted(keys)
        assert index.check_order_invariant()


class TestDigestProperties:
    @given(values=st.lists(u64, max_size=30))
    def test_digest_deterministic(self, values):
        assert digest_ints(values) == digest_ints(list(values))

    @given(values=st.lists(u64, min_size=1, max_size=30), index=st.integers(0))
    def test_digest_sensitive_to_any_change(self, values, index):
        position = index % len(values)
        tampered = list(values)
        tampered[position] ^= 1
        assert digest_ints(values) != digest_ints(tampered)


class TestAbftProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        n=st.integers(min_value=1, max_value=5),
    )
    def test_abft_matmul_matches_plain_on_healthy(self, seed, n):
        from repro.mitigation.resilient.matfact import abft_matmul, matmul

        rng = np.random.default_rng(seed)
        a = [[int(x) for x in row] for row in rng.integers(0, 2**30, (n, n))]
        b = [[int(x) for x in row] for row in rng.integers(0, 2**30, (n, n))]
        core = _core()
        product, corrections = abft_matmul(core, a, b)
        assert corrections == 0
        assert product == matmul(core, a, b)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_gf_mul_matches_bigint(self, seed):
        from repro.mitigation.resilient.matfact import GF_PRIME, _gf_mul

        rng = np.random.default_rng(seed)
        a = int(rng.integers(0, GF_PRIME))
        b = int(rng.integers(0, GF_PRIME))
        assert _gf_mul(_core(), a, b) == (a * b) % GF_PRIME


class TestComplaintStatistics:
    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=1, max_value=60),
           k=st.integers(min_value=0, max_value=60))
    def test_binomial_tail_in_unit_interval(self, n, k):
        from repro.core.report import _binomial_tail

        tail = _binomial_tail(n, k, 0.01)
        assert 0.0 <= tail <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(min_value=2, max_value=50))
    def test_binomial_tail_monotone_in_k(self, n):
        from repro.core.report import _binomial_tail

        tails = [_binomial_tail(n, k, 0.1) for k in range(n + 1)]
        assert all(a >= b for a, b in zip(tails, tails[1:]))
