"""Online and offline screeners."""

import numpy as np
import pytest

from repro.detection.offline import OfflineScreener, OfflineScreenerConfig
from repro.detection.online import OnlineScreener, OnlineScreenerConfig
from repro.detection.screener import (
    Automation,
    Mode,
    ScreeningBudget,
    ScreenResult,
)
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.environment import NOMINAL
from repro.silicon.sensitivity import ThermalSensitivity, VoltageMarginSensitivity
from repro.silicon.units import FunctionalUnit


def _gated_core(seed=0):
    """A defect that only fires with voltage margin eroded."""
    return Core(
        "scr/gated",
        defects=[
            StuckBitDefect(
                "volt", bit=7, base_rate=1e-7,
                sensitivity=VoltageMarginSensitivity(factor_per_50mv=50.0),
                unit=FunctionalUnit.ALU,
            )
        ],
        rng=np.random.default_rng(seed),
    )


def _loud_core(seed=0):
    return Core(
        "scr/loud",
        defects=[StuckBitDefect("loud", bit=3, base_rate=5e-3,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )


class TestOnlineScreener:
    def test_axes_declaration(self):
        assert OnlineScreener.axes.mode is Mode.ONLINE
        assert OnlineScreener.axes.automation is Automation.AUTOMATED

    def test_catches_loud_defect(self):
        assert OnlineScreener().screen_core(_loud_core()).confessed

    def test_misses_environment_gated_defect(self):
        assert not OnlineScreener().screen_core(_gated_core()).confessed

    def test_round_skips_offline_cores(self, healthy_pool):
        healthy_pool[0].set_online(False)
        results = OnlineScreener().round(healthy_pool, fraction=1.0)
        screened = {r.core_id for r in results}
        assert healthy_pool[0].core_id not in screened

    def test_round_fraction_validated(self, healthy_pool):
        with pytest.raises(ValueError):
            OnlineScreener().round(healthy_pool, fraction=0.0)

    def test_duty_cycle_drives_repetitions(self):
        lean = OnlineScreenerConfig(duty_cycle=0.001)
        rich = OnlineScreenerConfig(duty_cycle=0.05)
        core = Core("scr/h", rng=np.random.default_rng(0))
        ops_lean = OnlineScreener(config=lean).screen_core(core).ops_cost
        ops_rich = OnlineScreener(config=rich).screen_core(core).ops_cost
        assert ops_rich > ops_lean

    def test_budget_accumulates(self, healthy_pool):
        screener = OnlineScreener()
        screener.round(healthy_pool)
        assert screener.budget.cores_screened == len(healthy_pool)
        assert screener.budget.total_ops > 0


class TestOfflineScreener:
    def test_axes_declaration(self):
        assert OfflineScreener.axes.mode is Mode.OFFLINE

    def test_catches_environment_gated_defect(self):
        screener = OfflineScreener(
            config=OfflineScreenerConfig(repetitions_per_point=1)
        )
        result = screener.screen_core(_gated_core())
        assert result.confessed
        # Confession happened at a named out-of-nominal condition.
        assert any("@" in name for name in result.failed_tests)

    def test_restores_environment_and_online_state(self):
        core = _gated_core()
        core.set_environment(NOMINAL)
        OfflineScreener().screen_core(core)
        assert core.env == NOMINAL
        assert core.online

    def test_charges_drain_cost(self):
        config = OfflineScreenerConfig(drain_coreseconds=240.0)
        result = OfflineScreener(config=config).screen_core(
            Core("scr/h2", rng=np.random.default_rng(0))
        )
        assert result.drain_cost_coreseconds == 240.0

    def test_sweep_schedule_includes_stress_points(self):
        screener = OfflineScreener()
        points = screener.sweep_schedule()
        nominal_count = len(screener.dvfs.states) * len(
            screener.config.temperatures_c
        )
        assert len(points) == nominal_count + 3  # 3 stress points

    def test_thermal_gated_defect_caught_by_temperature_sweep(self):
        core = Core(
            "scr/hot",
            defects=[
                StuckBitDefect(
                    "hot", bit=2, base_rate=5e-6,
                    sensitivity=ThermalSensitivity(factor_per_10c=8.0),
                    unit=FunctionalUnit.ALU,
                )
            ],
            rng=np.random.default_rng(3),
        )
        assert OfflineScreener().screen_core(core).confessed

    def test_screen_population_covers_everyone(self, healthy_pool):
        screener = OfflineScreener(
            config=OfflineScreenerConfig(repetitions_per_point=1)
        )
        results = screener.screen_population(healthy_pool[:2])
        assert len(results) == 2


class TestScreeningBudget:
    def test_render_mentions_confessions(self):
        budget = ScreeningBudget()
        budget.add(ScreenResult("c", passed=False, failed_tests=["x"],
                                tests_run=3, ops_cost=10))
        assert "1 confessions" in budget.render()
