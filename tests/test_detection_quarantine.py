"""Isolation mechanisms and safe-task analysis."""

import numpy as np

from repro.detection.quarantine import (
    CoreQuarantine,
    MachineQuarantine,
    heuristic_safe_op_mix,
    safe_op_mix,
    units_implicated,
)
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op


def _bad_core(seed=0):
    return Core(
        "q/bad",
        defects=[StuckBitDefect("d", bit=1, base_rate=1e-3,
                                unit=FunctionalUnit.VECTOR)],
        rng=np.random.default_rng(seed),
    )


class TestCoreQuarantine:
    def test_remove_takes_core_offline(self):
        quarantine = CoreQuarantine()
        core = _bad_core()
        quarantine.remove(core, running_tasks=3)
        assert not core.online
        assert quarantine.cost.cores_stranded == 1
        assert quarantine.cost.migrations == 3

    def test_double_remove_is_idempotent(self):
        quarantine = CoreQuarantine()
        core = _bad_core()
        quarantine.remove(core)
        quarantine.remove(core)
        assert quarantine.cost.cores_stranded == 1

    def test_healthy_strandings_tracked_separately(self):
        quarantine = CoreQuarantine()
        healthy = Core("q/h", rng=np.random.default_rng(0))
        quarantine.remove(healthy)
        assert quarantine.cost.healthy_cores_stranded == 1

    def test_restore(self):
        quarantine = CoreQuarantine()
        core = _bad_core()
        quarantine.remove(core)
        quarantine.restore(core)
        assert core.online
        assert quarantine.cost.cores_stranded == 0


class TestMachineQuarantine:
    def test_remove_strands_all_cores(self):
        quarantine = MachineQuarantine()
        cores = [Core(f"m0/c{i}", rng=np.random.default_rng(i)) for i in range(4)]
        cores[0] = _bad_core()
        quarantine.remove("m0", cores, running_tasks=10)
        assert quarantine.cost.cores_stranded == 4
        assert quarantine.cost.healthy_cores_stranded == 3
        assert all(not core.online for core in cores)


class TestSafeTasks:
    def test_oracle_safe_op_mix(self):
        core = _bad_core()
        scalar_mix = {Op.ADD: 0.7, Op.MUL: 0.3}
        vector_mix = {Op.VADD: 0.5, Op.ADD: 0.5}
        assert safe_op_mix(core, scalar_mix)
        assert not safe_op_mix(core, vector_mix)

    def test_units_implicated_unions_failures(self):
        implicated = units_implicated([
            frozenset({FunctionalUnit.VECTOR}),
            frozenset({FunctionalUnit.VECTOR, FunctionalUnit.LOAD_STORE}),
        ])
        assert implicated == frozenset(
            {FunctionalUnit.VECTOR, FunctionalUnit.LOAD_STORE}
        )

    def test_heuristic_rejects_mix_touching_implicated_unit(self):
        implicated = frozenset({FunctionalUnit.VECTOR})
        assert heuristic_safe_op_mix(implicated, {Op.ADD: 1.0})
        assert not heuristic_safe_op_mix(implicated, {Op.VADD: 0.1, Op.ADD: 0.9})

    def test_heuristic_tolerance(self):
        implicated = frozenset({FunctionalUnit.VECTOR})
        mix = {Op.VADD: 0.05, Op.ADD: 0.95}
        assert heuristic_safe_op_mix(implicated, mix, tolerance=0.1)
