"""DMR/TMR executors."""

import numpy as np
import pytest

from repro.mitigation.redundancy import (
    DmrExecutor,
    RedundancyExhaustedError,
    TmrExecutor,
)
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op
from repro.workloads.generator import spec_by_name


def _work(seed=7):
    return spec_by_name("hashing").build(seed)


def _bad_core(core_id="rd/bad", rate=1.0, seed=0):
    return Core(
        core_id,
        defects=[StuckBitDefect("d", bit=13, base_rate=rate,
                                unit=FunctionalUnit.MUL_DIV)],
        rng=np.random.default_rng(seed),
    )


class TestDmr:
    def test_healthy_pair_agrees_first_round(self, healthy_pool):
        outcome = DmrExecutor(healthy_pool).run(_work())
        assert outcome.executions == 2
        assert not outcome.detected_corruption
        assert outcome.cost_factor == 2.0

    def test_defective_member_triggers_retry_on_fresh_pair(self, healthy_pool):
        pool = [_bad_core()] + healthy_pool
        outcome = DmrExecutor(pool).run(_work())
        assert outcome.detected_corruption
        assert outcome.executions == 4  # one failed round + one clean round
        assert outcome.disagreements == 1

    def test_exhaustion_raises(self):
        pool = [_bad_core(f"rd/b{i}", seed=i) for i in range(4)]
        # Deterministic defect with different rng -> pairs never agree...
        # actually identical defects corrupt identically; use differing bits.
        pool = [
            Core(
                f"rd/b{i}",
                defects=[StuckBitDefect("d", bit=i + 1, base_rate=1.0,
                                        unit=FunctionalUnit.MUL_DIV)],
                rng=np.random.default_rng(i),
            )
            for i in range(4)
        ]
        with pytest.raises(RedundancyExhaustedError):
            DmrExecutor(pool, max_rounds=2).run(_work())

    def test_needs_two_cores(self, healthy_core):
        with pytest.raises(ValueError):
            DmrExecutor([healthy_core])


class TestTmr:
    def test_healthy_triple(self, healthy_pool):
        outcome = TmrExecutor(healthy_pool).run(_work())
        assert outcome.executions == 3
        assert not outcome.detected_corruption

    def test_outvotes_one_defective_member(self, healthy_pool):
        pool = [_bad_core()] + healthy_pool[:2]
        outcome = TmrExecutor(pool).run(_work())
        assert outcome.detected_corruption
        # The majority (healthy) result wins.
        reference = _work()(healthy_pool[3])
        assert outcome.result.output_digest == reference.output_digest

    def test_three_way_disagreement_raises(self):
        pool = [
            Core(
                f"rd/t{i}",
                defects=[StuckBitDefect("d", bit=i + 2, base_rate=1.0,
                                        unit=FunctionalUnit.MUL_DIV)],
                rng=np.random.default_rng(i),
            )
            for i in range(3)
        ]
        with pytest.raises(RedundancyExhaustedError):
            TmrExecutor(pool).run(_work())

    def test_identically_defective_majority_wins_silently(self, healthy_pool):
        """The TMR blind spot: two members sharing a deterministic
        defect out-vote the healthy one — correlated defects defeat
        voting (why the paper stresses *independent* cores)."""
        twin_a = Core(
            "rd/twin-a",
            defects=[StuckBitDefect("d", bit=13, base_rate=1.0,
                                    unit=FunctionalUnit.MUL_DIV)],
            rng=np.random.default_rng(0),
        )
        twin_b = Core(
            "rd/twin-b",
            defects=[StuckBitDefect("d", bit=13, base_rate=1.0,
                                    unit=FunctionalUnit.MUL_DIV)],
            rng=np.random.default_rng(1),
        )
        outcome = TmrExecutor([twin_a, twin_b, healthy_pool[0]]).run(_work())
        reference = _work()(healthy_pool[1])
        assert outcome.result.output_digest != reference.output_digest

    def test_needs_three_cores(self, healthy_pool):
        with pytest.raises(ValueError):
            TmrExecutor(healthy_pool[:2])

    def test_unreliable_voter_ablation_runs(self, healthy_pool):
        voter = _bad_core("rd/voter", rate=0.0)  # harmless here
        outcome = TmrExecutor(healthy_pool, voter_core=voter).run(_work())
        assert outcome.executions == 3

    def test_defective_voter_outvotes_two_healthy_workers(self, healthy_pool):
        """§7 regression: "this relies on the voting mechanism itself
        being reliable."  A voter whose comparator is inverted (bit 0
        of BEQ flipped, deterministically) declares the corrupt
        member's digest the majority: the wrong result is returned
        with full TMR confidence — no exception — while the two
        genuinely-healthy, genuinely-agreeing workers are booked as
        the out-voted minority."""
        inverted_voter = Core(
            "rd/voter-inverted",
            defects=[StuckBitDefect("d", bit=0, base_rate=1.0,
                                    ops=(Op.BEQ,))],
            rng=np.random.default_rng(9),
        )
        pool = [_bad_core()] + healthy_pool[:2]
        outcome = TmrExecutor(pool, voter_core=inverted_voter).run(_work())
        reference = _work()(healthy_pool[3])
        # Wrong-but-confident: the corrupt digest "won" the vote...
        assert outcome.result.output_digest != reference.output_digest
        assert outcome.cores_used[0] == "rd/bad"
        # ...with the two healthy workers recorded as the dissenters.
        assert outcome.disagreements == 1
        # Sanity: a host-side (reliable) vote on the same pool returns
        # the healthy majority instead.
        honest = TmrExecutor(pool).run(_work())
        assert honest.result.output_digest == reference.output_digest
