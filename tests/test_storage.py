"""Unit tests for the durable-path stack: WAL, replica, store, repair."""

import numpy as np
import pytest

from repro.core.events import EventKind
from repro.silicon.core import Core
from repro.silicon.defects import SboxPermutationDefect, StuckBitDefect
from repro.silicon.errors import CoreOfflineError
from repro.silicon.units import FunctionalUnit
from repro.storage import (
    AntiEntropy,
    ReplicatedKVStore,
    Scrubber,
    StorageReplica,
    StoreConfig,
    WriteAheadLog,
    build_merkle_tree,
    host_crc64,
)
from repro.storage.wal import WalRecord

VALUE = bytes(range(16))
OTHER = bytes(range(16, 32))


def healthy_core(core_id="t/c00", seed=0):
    return Core(core_id, rng=np.random.default_rng(seed))


def stuck_core(core_id="t/cbad", seed=0):
    defect = StuckBitDefect(
        "d0", bit=7, base_rate=1.0, unit=FunctionalUnit.LOAD_STORE
    )
    return Core(core_id, defects=(defect,), rng=np.random.default_rng(seed))


def sbox_core(core_id="t/csbox", seed=0):
    # Swap every S-box entry with its neighbour: any encryption on this
    # core miscomputes, yet its own decryption inverts it perfectly.
    defect = SboxPermutationDefect(
        "d1", swaps=tuple((i, i + 1) for i in range(0, 256, 2))
    )
    return Core(core_id, defects=(defect,), rng=np.random.default_rng(seed))


def make_wal(core=None, verify=True):
    wal = WriteAheadLog(core or healthy_core(), verify_on_replay=verify)
    for seqno, (key, value) in enumerate(
        [("a", VALUE), ("b", OTHER), ("c", VALUE)]
    ):
        wal.append(seqno, key, value, host_crc64(value))
    return wal


class TestWriteAheadLog:
    def test_clean_replay_round_trips(self):
        table, report = make_wal().replay()
        assert report.clean
        assert report.applied == 3
        assert table["a"] == (VALUE, host_crc64(VALUE))
        assert table["b"] == (OTHER, host_crc64(OTHER))

    def test_verified_replay_truncates_at_first_corrupt_record(self):
        wal = make_wal()
        bad = wal.records[1]
        wal.records[1] = WalRecord(bad.seqno, bad.key, b"\x00" * 16, bad.crc)
        table, report = wal.replay()
        # Better a bounded, known loss than silently applied corruption:
        # the good record *behind* the corrupt one is sacrificed too.
        assert report.corrupt_records == [1]
        assert report.truncated_from == 1
        assert sorted(table) == ["a"]
        assert len(wal) == 1
        assert wal.records_truncated == 2

    def test_unverified_replay_applies_corruption_blindly(self):
        wal = make_wal(verify=False)
        bad = wal.records[1]
        wal.records[1] = WalRecord(bad.seqno, bad.key, b"\x00" * 16, bad.crc)
        table, report = wal.replay()
        assert report.corrupt_records == [1]       # ground truth only
        assert report.truncated_from is None
        assert table["b"] == (b"\x00" * 16, bad.crc)   # poisoned memtable

    def test_torn_tail_truncates_only_the_last_record(self):
        wal = make_wal()
        assert wal.tear_tail()
        assert not wal.records[-1].intact
        table, report = wal.replay()
        assert report.truncated_from == 2
        assert sorted(table) == ["a", "b"]

    def test_defective_core_corrupts_the_landed_frame(self):
        wal = WriteAheadLog(stuck_core())
        record = wal.append(0, "a", VALUE, host_crc64(VALUE))
        assert record.value != VALUE
        assert not record.intact


class TestStorageReplica:
    def test_crash_recover_replays_the_wal(self):
        replica = StorageReplica("store/0", healthy_core())
        replica.put(0, "a", VALUE, host_crc64(VALUE))
        replica.put(1, "b", OTHER, host_crc64(OTHER))
        report = replica.crash_recover()
        assert report is not None and report.clean
        assert replica.table == {"a": VALUE, "b": OTHER}

    def test_crash_without_wal_loses_everything(self):
        replica = StorageReplica("store/0", healthy_core(), use_wal=False)
        replica.put(0, "a", VALUE, host_crc64(VALUE))
        assert replica.crash_recover() is None
        assert replica.table == {}

    def test_offline_core_raises(self):
        replica = StorageReplica("store/0", healthy_core())
        replica.core.set_online(False)
        with pytest.raises(CoreOfflineError):
            replica.put(0, "a", VALUE, host_crc64(VALUE))


def make_store(config=None, events=None, coordinators=None):
    replicas = [
        StorageReplica(f"store/{i}", healthy_core(f"t/c{i:02d}", seed=i))
        for i in range(3)
    ]
    emit = None
    if events is not None:
        emit = lambda core_id, kind, detail: events.append((core_id, kind))
    store = ReplicatedKVStore(
        replicas,
        coordinator_cores=coordinators or [r.core for r in replicas],
        trusted_core=healthy_core("client/c00", seed=99),
        config=config or StoreConfig(),
        emit=emit,
    )
    return store, replicas


class TestReplicatedKVStore:
    def test_put_get_round_trips_through_encryption(self):
        store, replicas = make_store()
        assert store.put("a", VALUE).ok
        result = store.get("a")
        assert result.ok and result.value == VALUE
        # What the replicas hold is ciphertext, never the plaintext.
        assert all(r.table["a"] != VALUE for r in replicas)

    def test_voted_read_rejects_frame_crc_failures(self):
        events = []
        store, replicas = make_store(events=events)
        store.put("a", VALUE)
        replicas[0].table["a"] = b"\xff" * 16        # rot; stale frame CRC
        result = store.get("a")
        assert result.ok and result.value == VALUE
        assert result.corrupt_rejected == 1
        assert (replicas[0].core_id, EventKind.QUORUM_MISMATCH) in events

    def test_voted_read_repairs_divergent_minority(self):
        events = []
        store, replicas = make_store(events=events)
        store.put("a", VALUE)
        majority = replicas[1].table["a"]
        # A well-formed wrong answer: bytes differ but the frame CRC is
        # consistent, so only the vote can catch it.
        forged = b"\x5a" * 16
        replicas[0].table["a"] = forged
        replicas[0].meta_crc["a"] = host_crc64(forged)
        result = store.get("a")
        assert result.ok and result.value == VALUE
        assert result.quorum_mismatches == 1
        assert replicas[0].replica_id in result.repaired_replicas
        assert replicas[0].table["a"] == majority
        assert (replicas[0].core_id, EventKind.QUORUM_MISMATCH) in events

    def test_voted_read_backfills_missing_replica(self):
        store, replicas = make_store()
        store.put("a", VALUE)
        replicas[2].drop("a")
        result = store.get("a")
        assert result.ok
        assert replicas[2].replica_id in result.repaired_replicas
        assert replicas[2].table["a"] == replicas[0].table["a"]

    def test_unprotected_read_serves_corruption_silently(self):
        store, replicas = make_store(config=StoreConfig.unprotected())
        store.put("a", VALUE)
        for replica in replicas:                      # rot every copy
            replica.table["a"] = b"\xff" * 16
        result = store.get("a")
        assert result.ok                              # no error, wrong bytes
        assert result.value != VALUE

    def test_encrypt_verify_blames_the_miscomputing_encryptor(self):
        events = []
        bad = sbox_core()
        goods = [healthy_core(f"t/c{i:02d}", seed=i) for i in range(3)]
        store, _ = make_store(events=events, coordinators=[bad] + goods)
        result = store.put("a", VALUE)
        # First attempt encrypts on the S-box core; the second-core
        # decrypt disagrees, the arbiter confirms the ciphertext is bad,
        # and the retry lands on a healthy encryptor.
        assert result.ok
        assert result.encrypt_verify_failures >= 1
        assert result.encrypt_attempts >= 2
        assert (bad.core_id, EventKind.ENCRYPT_VERIFY_FAIL) in events
        read = store.get("a")
        assert read.ok and read.value == VALUE

    def test_encrypt_verify_blames_the_miscomputing_verifier(self):
        events = []
        bad = sbox_core()
        goods = [healthy_core(f"t/c{i:02d}", seed=i) for i in range(2)]
        store, _ = make_store(
            events=events, coordinators=[goods[0], bad, goods[1]]
        )
        result = store.put("a", VALUE)
        # The ciphertext is fine; the S-box core's verify decrypt is the
        # divergence.  Arbitration sides with the encryptor, the write
        # is acked on the first attempt, and the blame lands on the
        # verifier core.
        assert result.ok
        assert result.encrypt_attempts == 1
        assert result.encrypt_verify_failures == 1
        assert (bad.core_id, EventKind.ENCRYPT_VERIFY_FAIL) in events
        read = store.get("a")
        assert read.ok and read.value == VALUE

    def test_unverified_sbox_encryption_is_unrecoverable_elsewhere(self):
        # The §5.2 trap, distilled: the S-box core's own decrypt is the
        # identity, so same-core verification would pass — but no other
        # core can ever recover the plaintext.
        bad = sbox_core()
        config = StoreConfig(encrypt_verify=False)
        store, _ = make_store(config=config, coordinators=[bad])
        store.put("a", VALUE)
        read = store.get("a")                 # decrypts on the trusted core
        assert read.value != VALUE
        round_keys_ct = store._ecb(bad, store.replicas[0].table["a"], False)
        assert round_keys_ct == VALUE         # the defective core: identity


class TestScrubber:
    def test_scrub_catches_at_rest_rot_and_repairs_it(self):
        events = []
        store, replicas = make_store(events=events)
        store.put("a", VALUE)
        good = replicas[1].table["a"]
        replicas[0].table["a"] = b"\xff" * 16
        report = Scrubber(store).scrub_round()
        assert report.mismatches == 1
        assert report.repairs == 1
        assert replicas[0].table["a"] == good
        assert (replicas[0].core_id, EventKind.SCRUB_MISMATCH) in events

    def test_scrub_backfills_missing_keys(self):
        store, replicas = make_store()
        store.put("a", VALUE)
        replicas[2].drop("a")
        report = Scrubber(store).scrub_round()
        assert report.backfills == 1
        assert replicas[2].table["a"] == replicas[0].table["a"]

    def test_scrub_window_rotates_through_the_key_space(self):
        store, _ = make_store()
        for i in range(6):
            store.put(f"k{i}", VALUE)
        scrubber = Scrubber(store, keys_per_round=2)
        for _ in range(3):
            assert scrubber.scrub_round().keys_scrubbed == 2
        assert scrubber.rounds == 3


class TestAntiEntropy:
    def test_identical_replicas_take_the_root_fast_path(self):
        store, _ = make_store()
        store.put("a", VALUE)
        store.put("b", OTHER)
        report = AntiEntropy(store).sync_round()
        assert report.root_match
        assert report.keys_compared == 0

    def test_divergence_is_found_repaired_and_flagged(self):
        events = []
        store, replicas = make_store(events=events)
        for i in range(8):
            store.put(f"k{i}", VALUE)
        good = replicas[1].table["k3"]
        replicas[0].table["k3"] = b"\xff" * 16
        sync = AntiEntropy(store)
        report = sync.sync_round()
        assert not report.root_match
        assert report.divergent_buckets == 1
        assert report.keys_repaired == 1
        assert replicas[0].table["k3"] == good
        assert (replicas[0].core_id, EventKind.SCRUB_MISMATCH) in events
        assert sync.sync_round().root_match           # converged

    def test_corrupt_copies_cannot_outvote_a_crc_valid_one(self):
        store, replicas = make_store()
        store.put("a", VALUE)
        good = replicas[2].table["a"]
        # Two replicas agree on the same wrong bytes, but their frame
        # CRCs are stale: the single intact copy wins the vote.
        for replica in replicas[:2]:
            replica.table["a"] = b"\xff" * 16
        report = AntiEntropy(store).sync_round()
        assert report.keys_repaired == 2
        assert all(r.table["a"] == good for r in replicas)

    def test_missing_keys_are_backfilled(self):
        store, replicas = make_store()
        store.put("a", VALUE)
        replicas[1].drop("a")
        report = AntiEntropy(store).sync_round()
        assert report.backfills == 1
        assert replicas[1].table["a"] == replicas[0].table["a"]

    def test_merkle_tree_is_deterministic_and_value_sensitive(self):
        table = {"a": VALUE, "b": OTHER}
        tree = build_merkle_tree(table)
        assert build_merkle_tree(dict(reversed(table.items()))) == tree
        assert build_merkle_tree({"a": VALUE, "b": VALUE}).root != tree.root
