"""Screening-test corpus."""

import numpy as np
import pytest

from repro.detection.corpus import ScreeningTest, TestCorpus, make_targeted_test
from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.silicon.defects import OperandPatternDefect, StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op


@pytest.fixture(scope="module")
def corpus():
    return TestCorpus.standard(seeds=(1,))


class TestCorpusStructure:
    def test_standard_covers_every_unit(self, corpus):
        assert corpus.coverage_gaps() == frozenset()

    def test_minimal_covers_every_unit(self):
        assert TestCorpus.minimal().coverage_gaps() == frozenset()

    def test_total_ops_positive(self, corpus):
        assert corpus.total_ops() > 10000

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            TestCorpus([])

    def test_add_test_grows_corpus(self, corpus):
        n = len(corpus.tests)
        corpus.add_test(
            make_targeted_test("t", Op.ADD, [(1, 2)], {FunctionalUnit.ALU})
        )
        assert len(corpus.tests) == n + 1
        corpus.tests.pop()


class TestScreening:
    def test_healthy_core_passes(self, corpus):
        core = Core("sc/h", rng=np.random.default_rng(0))
        result = corpus.screen(core)
        assert result.passed and not result.confessed
        assert result.tests_run == len(corpus.tests)

    @pytest.mark.parametrize(
        "case",
        ["self_inverting_aes", "comparator_flip", "string_bit_flipper",
         "lock_violator", "copy_vector_shared"],
    )
    def test_named_cases_confess(self, corpus, case):
        core = Core(
            f"sc/{case}", defects=named_case(case),
            rng=np.random.default_rng(5),
        )
        assert corpus.screen(core, repetitions=3).confessed

    def test_machine_checker_confesses_via_mce(self, corpus):
        core = Core(
            "sc/mce", defects=named_case("machine_checker"),
            rng=np.random.default_rng(5),
        )
        result = corpus.screen(core, repetitions=4)
        assert result.machine_checks > 0
        assert result.confessed

    def test_failed_test_names_carry_unit_information(self, corpus):
        core = Core(
            "sc/aes", defects=named_case("self_inverting_aes"),
            rng=np.random.default_rng(0),
        )
        result = corpus.screen(core)
        assert any("crypto" in name or "aes" in name
                   for name in result.failed_tests)

    def test_ops_cost_accumulates(self, corpus):
        core = Core("sc/h2", rng=np.random.default_rng(0))
        one = corpus.screen(core, repetitions=1).ops_cost
        two = corpus.screen(core, repetitions=2).ops_cost
        assert two == 2 * one > 0


class TestTargetedTests:
    def test_zero_day_pattern_missed_then_caught(self, corpus):
        """§6's workflow: a pattern defect evades the generic corpus
        until a targeted regression test is written for it."""
        defect = OperandPatternDefect(
            "zero-day", mask=0xFFFF0000, value=0x12340000, error=1 << 40,
            base_rate=1.0, ops=(Op.MUL,),
        )
        core = Core("sc/zd", defects=[defect], rng=np.random.default_rng(1))
        assert corpus.screen(core).passed  # generic corpus is blind
        targeted = make_targeted_test(
            "targeted:zero-day", Op.MUL,
            [(0x12340000 | i, 0x12340007) for i in range(8)],
            {FunctionalUnit.MUL_DIV},
        )
        assert not targeted.run(core)

    def test_targeted_test_passes_on_healthy(self):
        targeted = make_targeted_test(
            "t", Op.MUL, [(3, 4), (5, 6)], {FunctionalUnit.MUL_DIV}
        )
        assert targeted.run(Core("sc/h3", rng=np.random.default_rng(0)))

    def test_empty_operand_sets_rejected(self):
        with pytest.raises(ValueError):
            make_targeted_test("t", Op.MUL, [], {FunctionalUnit.MUL_DIV})


class TestDataPatternSeeds:
    def test_multiple_seeds_widen_data_coverage(self):
        """§2: 'data patterns can affect corruption rates' — a defect
        gated on patterns one seed misses can be caught by another."""
        corpus_one = TestCorpus.standard(seeds=(1,))
        corpus_many = TestCorpus.standard(seeds=(1, 2, 3))
        assert len(corpus_many.tests) == 3 * len(corpus_one.tests)
