"""Functional-unit mapping and shared logic blocks."""

import pytest

from repro.silicon.units import (
    ALL_OPS,
    FunctionalUnit,
    LogicBlock,
    Op,
    OP_LOGIC_BLOCKS,
    OP_UNIT,
    UNIT_OPS,
    logic_blocks_of,
    ops_touching,
    unit_of,
)


class TestOpUnitMapping:
    def test_every_op_has_a_unit(self):
        assert set(OP_UNIT) == set(ALL_OPS)

    def test_every_op_has_logic_blocks_entry(self):
        assert set(OP_LOGIC_BLOCKS) == set(ALL_OPS)

    def test_every_unit_has_at_least_one_op(self):
        for unit in FunctionalUnit:
            assert UNIT_OPS[unit], f"{unit} has no operations"

    def test_unit_of_known_ops(self):
        assert unit_of(Op.ADD) is FunctionalUnit.ALU
        assert unit_of(Op.MUL) is FunctionalUnit.MUL_DIV
        assert unit_of(Op.VADD) is FunctionalUnit.VECTOR
        assert unit_of(Op.COPY) is FunctionalUnit.LOAD_STORE
        assert unit_of(Op.SBOX) is FunctionalUnit.CRYPTO
        assert unit_of(Op.CAS) is FunctionalUnit.ATOMICS

    def test_unit_of_unknown_op_raises(self):
        with pytest.raises(KeyError):
            unit_of("nope")


class TestSharedLogic:
    def test_copy_and_vector_share_shuffle_network(self):
        """The §5 observation: copy and vector ops share hardware."""
        shuffle_ops = set(ops_touching(LogicBlock.SHUFFLE_NETWORK))
        assert Op.COPY in shuffle_ops
        assert Op.VXOR in shuffle_ops
        assert Op.VADD in shuffle_ops
        # Scalar ALU ops do not cross the shuffle network.
        assert Op.ADD not in shuffle_ops

    def test_adder_tree_spans_scalar_and_vector(self):
        adder_ops = set(ops_touching(LogicBlock.ADDER_TREE))
        assert Op.ADD in adder_ops
        assert Op.VADD in adder_ops
        assert Op.VSUM in adder_ops

    def test_logic_blocks_of_matches_table(self):
        assert logic_blocks_of(Op.MUL) == frozenset({LogicBlock.BOOTH_MULTIPLIER})

    def test_ops_touching_unused_block_can_be_empty(self):
        for block in LogicBlock:
            # every block is reachable from at least one op
            assert ops_touching(block), f"{block} orphaned"
