"""The §4 metrics."""

import math

import pytest

from repro.core.metrics import (
    Confusion,
    FleetMetrics,
    confusion,
    core_incidence_fraction,
    incidence_per_kmachine,
    onset_stats,
    stickiness,
    visible_corruption_rate,
)


class TestConfusion:
    def test_counts(self):
        truth = {"a": True, "b": True, "c": False, "d": False}
        result = confusion(truth, flagged={"a", "c"})
        assert (result.true_positives, result.false_positives,
                result.false_negatives, result.true_negatives) == (1, 1, 1, 1)

    def test_precision_recall(self):
        result = Confusion(8, 2, 4, 100)
        assert result.precision == pytest.approx(0.8)
        assert result.recall == pytest.approx(8 / 12)
        assert result.false_positive_rate == pytest.approx(2 / 102)

    def test_empty_denominators(self):
        empty = Confusion(0, 0, 0, 0)
        assert empty.precision == 0.0
        assert empty.recall == 0.0


class TestIncidence:
    def test_per_kmachine(self):
        assert incidence_per_kmachine(4, 4000) == pytest.approx(1.0)

    def test_core_fraction(self):
        assert core_incidence_fraction(2, 1000) == pytest.approx(0.002)

    def test_zero_machines_rejected(self):
        with pytest.raises(ValueError):
            incidence_per_kmachine(1, 0)


class TestOnsetStats:
    def test_censoring_counts_beyond_horizon(self):
        stats = onset_stats([10.0, 20.0, 900.0, 1000.0], horizon_days=365.0)
        assert stats.observed == 2
        assert stats.censored == 2
        assert stats.censored_fraction == 0.5
        assert stats.median_days == pytest.approx(15.0)

    def test_all_censored_yields_nan(self):
        stats = onset_stats([400.0], horizon_days=365.0)
        assert stats.observed == 0
        assert math.isnan(stats.mean_days)


class TestRatesAndStickiness:
    def test_visible_rate(self):
        assert visible_corruption_rate(6, 3.0) == pytest.approx(2.0)

    def test_visible_rate_needs_positive_hours(self):
        with pytest.raises(ValueError):
            visible_corruption_rate(1, 0.0)

    def test_stickiness_amplification(self):
        assert stickiness(2, 10) == pytest.approx(5.0)

    def test_stickiness_no_roots(self):
        assert stickiness(0, 5) == 0.0


class TestFleetMetrics:
    def _bundle(self):
        return FleetMetrics(
            machines=1000,
            cores=32000,
            mercurial_cores_truth=4,
            mercurial_cores_detected=3,
            detection=Confusion(3, 1, 1, 31995),
            onset=onset_stats([0.0, 100.0, 200.0, 900.0], 365.0),
            visible_rate_per_hour=0.01,
            stickiness=2.5,
        )

    def test_per_kmachine_views(self):
        bundle = self._bundle()
        assert bundle.truth_per_kmachine == pytest.approx(4.0)
        assert bundle.detected_per_kmachine == pytest.approx(3.0)

    def test_coverage_shortfall(self):
        assert self._bundle().coverage_shortfall == pytest.approx(0.25)

    def test_render_mentions_key_numbers(self):
        text = self._bundle().render()
        assert "per 1000 machines" in text
        assert "precision" in text
        assert "stickiness" in text
