"""Fleet simulator integration (small scale for CI)."""

import dataclasses

import numpy as np
import pytest

from repro.core.events import EventKind, Reporter
from repro.core.metrics import confusion
from repro.core.policy import PolicyConfig
from repro.fleet.machine import Machine
from repro.fleet.population import (
    FleetBuilder,
    FleetGroundTruth,
    ground_truth_map,
)
from repro.fleet.product import CpuProduct, DEFAULT_PRODUCTS
from repro.fleet.simulator import FleetSimulator, SimulatorConfig
from repro.silicon.aging import AgingProfile, WeibullOnset
from repro.silicon.core import Chip, Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit


def _dense_products(scale=40.0):
    return tuple(
        dataclasses.replace(p, core_prevalence=p.core_prevalence * scale)
        for p in DEFAULT_PRODUCTS
    )


@pytest.fixture(scope="module")
def small_campaign():
    builder = FleetBuilder(
        products=_dense_products(), seed=11,
        deployment_window=(-700.0, 0.0),
    )
    machines, truth = builder.build(400)
    config = SimulatorConfig(horizon_days=120.0, warmup_days=0.0)
    simulator = FleetSimulator(machines, truth, config, seed=3)
    result = simulator.run()
    return machines, truth, result


class TestCampaign:
    def test_produces_events(self, small_campaign):
        _, _, result = small_campaign
        assert len(result.events) > 0

    def test_quarantines_only_with_evidence(self, small_campaign):
        machines, truth, result = small_campaign
        detection = confusion(ground_truth_map(machines), result.flagged())
        # With confession-gated policy, precision should be high.
        if result.quarantined_cores:
            assert detection.precision >= 0.8

    def test_detects_some_mercurial_cores(self, small_campaign):
        _, truth, result = small_campaign
        assert truth.n_mercurial > 0
        detected = result.quarantined_cores & truth.mercurial_core_ids
        assert detected  # a 4-month campaign catches the loud ones

    def test_detection_latency_recorded(self, small_campaign):
        _, truth, result = small_campaign
        for core_id, latency in result.detection_latency_days.items():
            assert core_id in truth.mercurial_core_ids
            assert latency >= 0.0

    def test_quarantined_cores_stop_producing_events(self, small_campaign):
        _, _, result = small_campaign
        for core_id, q_day in result.quarantine_day.items():
            later = [
                e for e in result.events
                if e.core_id == core_id and e.time_days > q_day + 1.0
                and e.kind is not EventKind.USER_REPORT
            ]
            assert later == []

    def test_event_series_available_for_both_reporters(self, small_campaign):
        _, _, result = small_campaign
        auto = result.cee_report_series(Reporter.AUTOMATED, bucket_days=30.0)
        human = result.cee_report_series(Reporter.HUMAN, bucket_days=30.0)
        assert len(auto) == len(human) == 4

    def test_screening_cost_accounted(self, small_campaign):
        _, _, result = small_campaign
        assert result.screening_ops_spent > 0


class TestConfigKnobs:
    def test_zero_background_noise_yields_no_bg_crashes(self):
        builder = FleetBuilder(products=_dense_products(), seed=13)
        machines, truth = builder.build(100)
        config = SimulatorConfig(
            horizon_days=30.0, warmup_days=0.0,
            bg_crash_rate=0.0, bg_user_rate=0.0,
        )
        result = FleetSimulator(machines, truth, config, seed=1).run()
        software_bug_crashes = [
            e for e in result.events
            if e.kind is EventKind.CRASH and e.detail == "software bug"
        ]
        assert software_bug_crashes == []

    def test_coverage_expansion_steps(self):
        builder = FleetBuilder(products=_dense_products(), seed=13)
        machines, truth = builder.build(50)
        config = SimulatorConfig(
            horizon_days=10.0, warmup_days=0.0,
            coverage_initial=0.4, coverage_step=0.2,
            coverage_expansions_per_year=2.0,
        )
        simulator = FleetSimulator(machines, truth, config, seed=1)
        assert simulator._coverage(0.0) == pytest.approx(0.4)
        assert simulator._coverage(183.0) == pytest.approx(0.6)
        assert simulator._coverage(2000.0) == 1.0  # capped

    def test_no_detectors_means_no_detection(self):
        """Ablation: with screening disabled AND no surfacing channels,
        corruption accumulates invisibly — the pre-awareness world the
        paper's §1 anecdote describes."""
        quiet = (
            CpuProduct(
                "v", "quiet", 32, core_prevalence=2e-3,
                onset=WeibullOnset(),
            ),
        )
        machines, truth = FleetBuilder(products=quiet, seed=17).build(150)
        config = SimulatorConfig(
            horizon_days=60.0, warmup_days=0.0,
            online_corpus_ops=0.0, offline_corpus_ops=0.0,
            confession_corpus_ops=0.0,
            p_selfcheck_surface=0.0, p_crash_surface=0.0,
            p_user_surface=0.0,
            bg_crash_rate=0.0, bg_user_rate=0.0,
        )
        result = FleetSimulator(machines, truth, config, seed=2).run()
        assert truth.n_mercurial > 0
        assert result.total_corruptions > 0  # damage is real...
        # ...and invisible — except for fail-noisy (machine-check)
        # defects, which are detectable by construction (§2: machine
        # checks are disruptive but at least observable).
        from repro.silicon.defects import MachineCheckDefect

        core_by_id = {
            core.core_id: core
            for machine in machines
            for core in machine.cores
        }
        for core_id in result.quarantined_cores:
            defects = core_by_id[core_id].defects
            assert any(isinstance(d, MachineCheckDefect) for d in defects)

    def test_app_selfchecks_alone_catch_loud_cores(self):
        """Even with zero screening, application-level checks (§6's
        'many of our applications already checked for SDCs') surface
        the loud mercurial cores."""
        machines, truth = FleetBuilder(
            products=_dense_products(), seed=17,
            deployment_window=(-700.0, 0.0),
        ).build(200)
        config = SimulatorConfig(
            horizon_days=60.0, warmup_days=0.0,
            online_corpus_ops=0.0, offline_corpus_ops=0.0,
        )
        result = FleetSimulator(machines, truth, config, seed=2).run()
        detected = result.quarantined_cores & truth.mercurial_core_ids
        assert detected


def _bespoke_fleet(n_bad=3, onset_days=0.0, base_rate=1e-4):
    """Two 4-core machines; the first carries ``n_bad`` loud mercurial
    cores (c00..), so the machine_core_limit escalation is reachable
    deterministically."""
    product = CpuProduct(
        vendor="sim", sku="bespoke-4c", cores_per_machine=4,
        core_prevalence=0.0,
    )
    machines, mercurial, onsets = [], set(), {}
    for m in range(2):
        machine_id = f"m{m:05d}"
        cores = []
        for c in range(4):
            core_id = f"{machine_id}/c{c:02d}"
            defects = ()
            if m == 0 and c < n_bad:
                defects = (
                    StuckBitDefect(
                        f"d/{core_id}", bit=3, base_rate=base_rate,
                        unit=FunctionalUnit.LOAD_STORE,
                        aging=AgingProfile(onset_days=onset_days),
                    ),
                )
                mercurial.add(core_id)
                onsets[core_id] = onset_days
            cores.append(
                Core(
                    core_id, defects=defects,
                    rng=np.random.default_rng(100 + m * 4 + c),
                )
            )
        machines.append(
            Machine(
                machine_id=machine_id, product=product, chip=Chip(cores),
                deploy_day=-60.0,
            )
        )
    truth = FleetGroundTruth(
        mercurial_core_ids=mercurial, onset_days_by_core=onsets
    )
    return machines, truth


def _quiet_config(**overrides):
    """No human channel, no background noise: the policy path alone."""
    defaults = dict(
        horizon_days=40.0, warmup_days=0.0,
        p_user_surface=0.0, bg_crash_rate=0.0, bg_user_rate=0.0,
        policy=PolicyConfig(
            machine_core_limit=3, max_quarantined_fraction=1.0
        ),
    )
    defaults.update(overrides)
    return SimulatorConfig(**defaults)


class TestQuarantineMachine:
    """The Action.QUARANTINE_MACHINE escalation path (simulator.py)."""

    @pytest.fixture(scope="class")
    def escalated(self):
        machines, truth = _bespoke_fleet(n_bad=3)
        result = FleetSimulator(machines, truth, _quiet_config(), seed=5).run()
        return machines, truth, result

    def test_third_bad_core_pulls_the_whole_machine(self, escalated):
        _, truth, result = escalated
        assert truth.mercurial_core_ids <= result.quarantined_cores
        # The healthy sibling goes down with the machine...
        assert "m00000/c03" in result.quarantined_cores
        # ...while the all-healthy second machine is untouched.
        assert not any(
            core_id.startswith("m00001/")
            for core_id in result.quarantined_cores
        )

    def test_sibling_gets_a_quarantine_day_but_no_latency_entry(
        self, escalated
    ):
        _, _, result = escalated
        # detection_latency_days is a *detection* metric: only truly
        # mercurial cores belong in it; collateral siblings do not.
        assert "m00000/c03" in result.quarantine_day
        assert "m00000/c03" not in result.detection_latency_days

    def test_sibling_quarantined_same_day_as_the_escalating_core(
        self, escalated
    ):
        _, truth, result = escalated
        escalation_day = max(
            result.quarantine_day[c] for c in truth.mercurial_core_ids
        )
        assert result.quarantine_day["m00000/c03"] == escalation_day

    def test_below_the_limit_no_machine_escalation(self):
        machines, truth = _bespoke_fleet(n_bad=2)
        result = FleetSimulator(machines, truth, _quiet_config(), seed=5).run()
        assert truth.mercurial_core_ids <= result.quarantined_cores
        assert "m00000/c03" not in result.quarantined_cores


class TestDetectionLatencyAccounting:
    def test_latency_clamped_for_defects_older_than_the_campaign(self):
        # The machine deployed 60 days before t=0, so an onset age of
        # 50 days predates the campaign: the core was already bad when
        # observation started and the latency clamp must hold at zero
        # (a negative "latency" would poison the E-series averages).
        machines, truth = _bespoke_fleet(n_bad=1, onset_days=50.0)
        result = FleetSimulator(machines, truth, _quiet_config(), seed=5).run()
        assert "m00000/c00" in result.detection_latency_days
        assert result.quarantine_day["m00000/c00"] < 50.0
        assert result.detection_latency_days["m00000/c00"] == 0.0

    def test_day_one_defect_latency_equals_quarantine_day(self):
        machines, truth = _bespoke_fleet(n_bad=1, onset_days=0.0)
        result = FleetSimulator(machines, truth, _quiet_config(), seed=5).run()
        latency = result.detection_latency_days["m00000/c00"]
        assert latency == pytest.approx(
            result.quarantine_day["m00000/c00"]
        )
