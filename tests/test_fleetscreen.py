"""Fleet-scale proxy screening: distillation, screens, ride-along budget.

Pins the contracts E19 and the operator guide (SCREENING.md) rely on:

- distillation is deterministic (same corpus => identical battery) and
  lands on the coverage/cost frontier (full unit coverage, far cheaper);
- whole-fleet screens are O(mercurial) with bulk cost accounting, and a
  battery that misses a defect's functional unit can never detect it;
- ride-along passes never spend over the machine-second budget and
  round-robin the fleet instead of re-screening a prefix;
- confessions drive the weighted quarantine loop (``columns.online``
  flips off) and the skipped-coverage breadcrumb is emitted;
- REPRO_OBS=off and on produce byte-identical E19 scorecards.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro import obs
from repro.core.events import EventKind
from repro.detection.corpus import TestCorpus
from repro.detection.fleetscreen import (
    DistilledBattery,
    FleetScreener,
    RideAlongCampaign,
    RideAlongConfig,
    RideAlongScreener,
    UNIT_ORDER,
    distill,
    full_battery,
    screen_shard,
    unit_ops_vector,
)
from repro.detection.weights import default_weights
from repro.fleet.population import FleetBuilder
from repro.fleet.product import DEFAULT_PRODUCTS


def _boosted_columns(n_machines: int = 40, scale: float = 800.0, seed: int = 11):
    """A columnar fleet dense enough in mercurial cores to test against."""
    products = tuple(
        dataclasses.replace(
            p, core_prevalence=min(1.0, p.core_prevalence * scale)
        )
        for p in DEFAULT_PRODUCTS
    )
    return FleetBuilder(
        products=products, seed=seed, deployment_window=(-400.0, 0.0)
    ).build_columns(n_machines)


class TestDistillation:
    def test_same_corpus_distills_identically(self):
        first = distill(TestCorpus.standard())
        second = distill(TestCorpus.standard())
        assert first.test_names() == second.test_names()
        assert first.total_ops == second.total_ops

    def test_distilled_battery_on_the_frontier(self):
        corpus = TestCorpus.standard()
        full = full_battery(corpus)
        distilled = distill(corpus)
        # the SiliFuzz claim: >=90% unit coverage at measurably lower cost
        assert distilled.coverage_fraction >= 0.9
        assert distilled.total_ops < full.total_ops
        assert len(distilled.tests) < len(full.tests)

    def test_full_set_cover_by_default(self):
        corpus = TestCorpus.standard()
        distilled = distill(corpus)
        assert distilled.covered_units >= corpus.covered_units()

    def test_partial_coverage_is_cheaper_still(self):
        corpus = TestCorpus.standard()
        half = distill(corpus, min_coverage=0.5)
        assert half.coverage_fraction >= 0.5
        assert half.total_ops <= distill(corpus).total_ops

    def test_min_coverage_validated(self):
        with pytest.raises(ValueError):
            distill(TestCorpus.standard(), min_coverage=0.0)

    def test_unit_ops_vector_splits_evenly(self):
        corpus = TestCorpus.standard()
        ops = unit_ops_vector(corpus.tests)
        assert ops.shape == (len(UNIT_ORDER),)
        assert ops.sum() == pytest.approx(
            sum(t.approx_ops for t in corpus.tests if t.target_units)
        )


class TestFleetScreener:
    def test_bulk_cost_covers_every_online_core(self):
        columns = _boosted_columns()
        battery = distill(TestCorpus.standard())
        result = FleetScreener(battery).screen(
            columns, 30.0, np.random.default_rng(0)
        )
        assert result.n_screened == int(columns.online.sum())
        assert result.cost_ops == result.n_screened * battery.total_ops
        assert result.machine_seconds == pytest.approx(
            result.cost_ops / 5e6
        )

    def test_confessions_only_from_mercurial_cores(self):
        columns = _boosted_columns()
        battery = full_battery(TestCorpus.standard())
        result = FleetScreener(battery, env_boost=6.0).screen(
            columns, 60.0, np.random.default_rng(0)
        )
        mercurial = set(np.asarray(columns.merc_core).tolist())
        assert result.confessed_flat
        assert set(result.confessed_flat) <= mercurial
        assert all(
            e.kind is EventKind.FLEETSCREEN_FAIL for e in result.events
        )

    def test_battery_missing_the_unit_detects_nothing(self):
        # a battery whose tests target no units has zero per-unit ops,
        # so every defect's confession probability is exactly zero
        columns = _boosted_columns()
        empty = DistilledBattery(tests=(), source_units=frozenset())
        result = FleetScreener(empty, env_boost=6.0).screen(
            columns, 60.0, np.random.default_rng(0)
        )
        assert result.confessed_flat == ()
        assert result.cost_ops == 0.0

    def test_screen_accepts_readonly_snapshot_columns(self):
        from repro.fleet import shm as fleet_shm

        columns = _boosted_columns()
        battery = distill(TestCorpus.standard())
        expected = FleetScreener(battery, env_boost=6.0).screen(
            columns, 60.0, np.random.default_rng(3)
        )
        snapshot = fleet_shm.publish(columns)
        try:
            attached = fleet_shm.attach(snapshot.handle)
            got = FleetScreener(battery, env_boost=6.0).screen(
                attached.columns, 60.0, np.random.default_rng(3)
            )
            assert got.confessed_flat == expected.confessed_flat
            assert got.n_screened == expected.n_screened
            attached.close()
        finally:
            snapshot.close()

    def test_shards_partition_the_fleet(self):
        columns = _boosted_columns()
        battery = distill(TestCorpus.standard())
        n_shards = 4
        results = [
            screen_shard(columns, battery, shard, n_shards, 30.0, seed=shard)
            for shard in range(n_shards)
        ]
        whole = FleetScreener(battery).screen(
            columns, 30.0, np.random.default_rng(0)
        )
        assert sum(r.n_screened for r in results) == whole.n_screened
        with pytest.raises(ValueError):
            screen_shard(columns, battery, n_shards, n_shards, 30.0, seed=0)


class TestRideAlongBudget:
    def test_spend_never_exceeds_budget(self):
        columns = _boosted_columns()
        screener = RideAlongScreener(
            distill(TestCorpus.standard()),
            RideAlongConfig(budget_fraction=2.5e-7),
        )
        rng = np.random.default_rng(0)
        for step in range(10):
            result = screener.run_pass(columns, float(step), 1.0, rng)
            assert result.spent_machine_seconds <= result.budget_machine_seconds
            assert result.n_skipped > 0  # this budget is genuinely binding

    def test_round_robin_sweeps_the_fleet(self):
        columns = _boosted_columns()
        screener = RideAlongScreener(
            distill(TestCorpus.standard()),
            RideAlongConfig(budget_fraction=2.5e-7),
        )
        rng = np.random.default_rng(0)
        first = screener.run_pass(columns, 0.0, 1.0, rng)
        second = screener.run_pass(columns, 1.0, 1.0, rng)
        assert first.screen.n_screened == second.screen.n_screened > 0
        # successive passes advance the cursor instead of re-screening
        # the same low-indexed prefix; over enough passes the whole
        # online fleet gets covered
        seen = first.screen.n_screened + second.screen.n_screened
        assert seen <= int(columns.online.sum())

    def test_skipped_breadcrumb_emitted_once_per_pass(self):
        columns = _boosted_columns()
        screener = RideAlongScreener(
            distill(TestCorpus.standard()),
            RideAlongConfig(budget_fraction=2.5e-7),
        )
        result = screener.run_pass(
            columns, 0.0, 1.0, np.random.default_rng(0)
        )
        skips = [
            e for e in result.events
            if e.kind is EventKind.RIDEALONG_SKIPPED
        ]
        assert len(skips) == 1
        assert skips[0].core_id is None  # aggregate, charges no core
        assert str(result.n_skipped) in skips[0].detail

    def test_unlimited_budget_skips_nothing(self):
        columns = _boosted_columns()
        screener = RideAlongScreener(
            distill(TestCorpus.standard()), RideAlongConfig(budget_fraction=1.0)
        )
        result = screener.run_pass(
            columns, 0.0, 1.0, np.random.default_rng(0), busy=None
        )
        assert result.n_skipped == 0
        assert result.screen.n_screened == result.n_candidates

    def test_budget_fraction_validated(self):
        with pytest.raises(ValueError):
            RideAlongConfig(budget_fraction=1.5)


class TestRideAlongCampaign:
    def test_confessions_quarantine_through_the_weights(self):
        columns = _boosted_columns()
        screener = RideAlongScreener(
            distill(TestCorpus.standard()),
            RideAlongConfig(budget_fraction=2e-5),
        )
        campaign = RideAlongCampaign(columns, screener, seed=3)
        report = campaign.run(horizon_days=60.0)
        assert report.n_confessions > 0
        assert report.detected
        # detected cores are offline (the quarantine loop closed)
        for flat in report.detected:
            assert not campaign.columns.online[flat]
        assert 0.0 < report.detected_fraction <= 1.0
        assert report.machine_seconds <= report.budget_machine_seconds
        assert all(lat >= 0.0 for lat in report.detection_latency_days)

    def test_weights_table_knows_the_new_events(self):
        weights = default_weights()
        assert weights[EventKind.FLEETSCREEN_FAIL] == pytest.approx(3.0)
        assert weights[EventKind.RIDEALONG_SKIPPED] == pytest.approx(0.2)
        # two confessions cross the default 6.0 quarantine threshold
        assert 2 * weights[EventKind.FLEETSCREEN_FAIL] >= 6.0


@pytest.fixture
def obs_state():
    prior = obs.enabled()
    yield
    obs.set_enabled(prior)
    obs.metrics.reset()
    obs.tracer.reset()


def _e19_fingerprint() -> str:
    from repro.analysis.experiments import run_fleetscreen_grid

    result = run_fleetscreen_grid(
        n_machines=30, horizon_days=30.0, budgets=(2.5e-7, 2e-5),
        prevalence_scales=(800.0,),
    )
    payload = {
        "grid": result["grid"],
        "baseline": [
            {k: v for k, v in row.items()
             if isinstance(v, (int, float, str, bool))}
            for row in result["baseline"]
        ],
        "rendered": result["rendered"],
    }
    return json.dumps(payload, sort_keys=True)


class TestObsParity:
    def test_e19_scorecard_identical_off_vs_on(self, obs_state):
        obs.set_enabled(False)
        off = _e19_fingerprint()
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        on = _e19_fingerprint()
        assert off == on

    def test_screener_emits_when_enabled(self, obs_state):
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        columns = _boosted_columns()
        battery = distill(TestCorpus.standard())
        FleetScreener(battery).screen(columns, 30.0, np.random.default_rng(0))
        assert obs.metrics.counter(
            "fleetscreen_screens_total"
        ).value() == float(int(columns.online.sum()))
