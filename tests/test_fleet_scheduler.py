"""Core-aware scheduler."""

import numpy as np
import pytest

from repro.fleet.population import FleetBuilder
from repro.fleet.scheduler import FleetScheduler, Task
from repro.silicon.units import FunctionalUnit, Op


def _small_fleet(n=4, seed=0):
    machines, _ = FleetBuilder(seed=seed).build(n)
    return machines


class TestScheduling:
    def test_all_tasks_placed_with_capacity(self):
        machines = _small_fleet()
        scheduler = FleetScheduler(machines)
        tasks = [Task(f"t{i}") for i in range(10)]
        placements, stats = scheduler.schedule(tasks)
        assert stats.placed == 10
        assert stats.unplaceable == 0
        assert len({p.core_id for p in placements}) == 10

    def test_quarantined_core_not_scheduled(self):
        machines = _small_fleet()
        victim = machines[0].cores[0]
        victim.set_online(False)
        scheduler = FleetScheduler(machines)
        online, total = scheduler.capacity()
        assert total - online == 1
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)]
        )
        assert stats.unplaceable == 1
        assert victim.core_id not in {p.core_id for p in placements}

    def test_stranded_fraction(self):
        machines = _small_fleet()
        total = sum(len(m.cores) for m in machines)
        for core in machines[0].cores:
            core.set_online(False)
        _, stats = FleetScheduler(machines).schedule([])
        assert stats.stranded_fraction == len(machines[0].cores) / total

    def test_exclude_core_ids_skips_those_slots(self):
        machines = _small_fleet()
        scheduler = FleetScheduler(machines)
        excluded = {machines[0].cores[0].core_id,
                    machines[0].cores[1].core_id}
        _, total = scheduler.capacity()
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)],
            exclude_core_ids=excluded,
        )
        assert excluded.isdisjoint({p.core_id for p in placements})
        assert stats.slots_excluded == len(excluded)
        assert stats.unplaceable == len(excluded)

    def test_exclusion_composes_with_quarantine(self):
        machines = _small_fleet()
        quarantined = machines[0].cores[0]
        quarantined.set_online(False)
        excluded = machines[0].cores[1].core_id
        scheduler = FleetScheduler(machines)
        _, total = scheduler.capacity()
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)],
            exclude_core_ids={excluded},
        )
        placed_on = {p.core_id for p in placements}
        assert quarantined.core_id not in placed_on
        assert excluded not in placed_on
        assert stats.slots_excluded == 1  # quarantine counted separately


class TestSafeTaskPlacement:
    def test_safe_task_reclaims_quarantined_core(self):
        machines = _small_fleet()
        victim = machines[0].cores[0]
        victim.set_online(False)
        scheduler = FleetScheduler(
            machines,
            allow_safe_tasks=True,
            implicated_units_by_core={
                victim.core_id: frozenset({FunctionalUnit.VECTOR})
            },
        )
        online, total = scheduler.capacity()
        scalar_mix = {Op.ADD: 1.0}
        tasks = [Task(f"t{i}", op_mix=scalar_mix) for i in range(total)]
        placements, stats = scheduler.schedule(tasks)
        assert stats.placed == total
        assert stats.placed_on_quarantined == 1
        assert any(p.on_quarantined_core for p in placements)

    def test_unsafe_task_not_placed_on_quarantined_core(self):
        machines = _small_fleet()
        victim = machines[0].cores[0]
        victim.set_online(False)
        scheduler = FleetScheduler(
            machines,
            allow_safe_tasks=True,
            implicated_units_by_core={
                victim.core_id: frozenset({FunctionalUnit.VECTOR})
            },
        )
        _, total = scheduler.capacity()
        vector_mix = {Op.VADD: 1.0}
        tasks = [Task(f"t{i}", op_mix=vector_mix) for i in range(total)]
        _, stats = scheduler.schedule(tasks)
        assert stats.placed_on_quarantined == 0
        assert stats.unplaceable == 1


class TestColumnarScheduler:
    """FleetColumns overload: identical placement, no Core objects."""

    def _both(self, n=4, seed=0):
        machines, _ = FleetBuilder(
            seed=seed, deployment_window=(-700.0, 0.0)
        ).build(n)
        columns = FleetBuilder(
            seed=seed, deployment_window=(-700.0, 0.0)
        ).build_columns(n)
        return machines, columns

    def test_placements_match_object_overload(self):
        machines, columns = self._both()
        tasks = [Task(f"t{i}") for i in range(10)]
        obj_placements, obj_stats = FleetScheduler(machines).schedule(tasks)
        col_placements, col_stats = FleetScheduler(columns).schedule(tasks)
        assert [(p.task.task_id, p.core_id, p.on_quarantined_core)
                for p in obj_placements] == [
            (p.task.task_id, p.core_id, p.on_quarantined_core)
            for p in col_placements
        ]
        assert obj_stats == col_stats

    def test_capacity_matches_after_quarantine(self):
        machines, columns = self._both()
        victim_id = machines[0].cores[0].core_id
        machines[0].cores[0].set_online(False)
        columns.online[columns.core_index(victim_id)] = False
        assert FleetScheduler(machines).capacity() == (
            FleetScheduler(columns).capacity()
        )

    def test_index_array_exclusion(self):
        _, columns = self._both()
        scheduler = FleetScheduler(columns)
        exclude = np.array([0, 1], dtype=np.int64)
        total = columns.n_cores
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)], exclude_core_ids=exclude
        )
        assert stats.slots_excluded == 2
        assert stats.unplaceable == 2
        excluded_ids = {columns.core_id(0), columns.core_id(1)}
        assert excluded_ids.isdisjoint({p.core_id for p in placements})

    def test_bool_mask_exclusion_matches_ids(self):
        _, columns = self._both()
        ids = {columns.core_id(3), columns.core_id(7)}
        mask = np.zeros(columns.n_cores, dtype=bool)
        mask[[3, 7]] = True
        tasks = [Task(f"t{i}") for i in range(columns.n_cores)]
        by_mask = FleetScheduler(columns).schedule(tasks, exclude_core_ids=mask)
        by_ids = FleetScheduler(columns).schedule(tasks, exclude_core_ids=ids)
        assert [(p.core_id) for p in by_mask[0]] == [
            (p.core_id) for p in by_ids[0]
        ]
        assert by_mask[1] == by_ids[1]

    def test_bool_mask_shape_checked(self):
        _, columns = self._both()
        with pytest.raises(ValueError, match="one entry per core"):
            FleetScheduler(columns).schedule(
                [], exclude_core_ids=np.zeros(3, dtype=bool)
            )

    def test_object_overload_rejects_index_arrays(self):
        machines, _ = self._both()
        with pytest.raises(TypeError, match="FleetColumns"):
            FleetScheduler(machines).schedule(
                [], exclude_core_ids=np.array([0], dtype=np.int64)
            )

    def test_safe_task_placement_matches(self):
        machines, columns = self._both()
        victim_id = machines[0].cores[0].core_id
        machines[0].cores[0].set_online(False)
        columns.online[columns.core_index(victim_id)] = False
        implicated = {victim_id: frozenset({FunctionalUnit.VECTOR})}
        scalar_mix = {Op.ADD: 1.0}
        total = columns.n_cores
        tasks = [Task(f"t{i}", op_mix=scalar_mix) for i in range(total)]
        obj = FleetScheduler(
            machines, allow_safe_tasks=True,
            implicated_units_by_core=implicated,
        ).schedule(tasks)
        col = FleetScheduler(
            columns, allow_safe_tasks=True,
            implicated_units_by_core=implicated,
        ).schedule(tasks)
        assert [(p.core_id, p.on_quarantined_core) for p in obj[0]] == [
            (p.core_id, p.on_quarantined_core) for p in col[0]
        ]
        assert obj[1] == col[1]
