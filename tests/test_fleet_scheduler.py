"""Core-aware scheduler."""

from repro.fleet.population import FleetBuilder
from repro.fleet.scheduler import FleetScheduler, Task
from repro.silicon.units import FunctionalUnit, Op


def _small_fleet(n=4, seed=0):
    machines, _ = FleetBuilder(seed=seed).build(n)
    return machines


class TestScheduling:
    def test_all_tasks_placed_with_capacity(self):
        machines = _small_fleet()
        scheduler = FleetScheduler(machines)
        tasks = [Task(f"t{i}") for i in range(10)]
        placements, stats = scheduler.schedule(tasks)
        assert stats.placed == 10
        assert stats.unplaceable == 0
        assert len({p.core_id for p in placements}) == 10

    def test_quarantined_core_not_scheduled(self):
        machines = _small_fleet()
        victim = machines[0].cores[0]
        victim.set_online(False)
        scheduler = FleetScheduler(machines)
        online, total = scheduler.capacity()
        assert total - online == 1
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)]
        )
        assert stats.unplaceable == 1
        assert victim.core_id not in {p.core_id for p in placements}

    def test_stranded_fraction(self):
        machines = _small_fleet()
        total = sum(len(m.cores) for m in machines)
        for core in machines[0].cores:
            core.set_online(False)
        _, stats = FleetScheduler(machines).schedule([])
        assert stats.stranded_fraction == len(machines[0].cores) / total

    def test_exclude_core_ids_skips_those_slots(self):
        machines = _small_fleet()
        scheduler = FleetScheduler(machines)
        excluded = {machines[0].cores[0].core_id,
                    machines[0].cores[1].core_id}
        _, total = scheduler.capacity()
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)],
            exclude_core_ids=excluded,
        )
        assert excluded.isdisjoint({p.core_id for p in placements})
        assert stats.slots_excluded == len(excluded)
        assert stats.unplaceable == len(excluded)

    def test_exclusion_composes_with_quarantine(self):
        machines = _small_fleet()
        quarantined = machines[0].cores[0]
        quarantined.set_online(False)
        excluded = machines[0].cores[1].core_id
        scheduler = FleetScheduler(machines)
        _, total = scheduler.capacity()
        placements, stats = scheduler.schedule(
            [Task(f"t{i}") for i in range(total)],
            exclude_core_ids={excluded},
        )
        placed_on = {p.core_id for p in placements}
        assert quarantined.core_id not in placed_on
        assert excluded not in placed_on
        assert stats.slots_excluded == 1  # quarantine counted separately


class TestSafeTaskPlacement:
    def test_safe_task_reclaims_quarantined_core(self):
        machines = _small_fleet()
        victim = machines[0].cores[0]
        victim.set_online(False)
        scheduler = FleetScheduler(
            machines,
            allow_safe_tasks=True,
            implicated_units_by_core={
                victim.core_id: frozenset({FunctionalUnit.VECTOR})
            },
        )
        online, total = scheduler.capacity()
        scalar_mix = {Op.ADD: 1.0}
        tasks = [Task(f"t{i}", op_mix=scalar_mix) for i in range(total)]
        placements, stats = scheduler.schedule(tasks)
        assert stats.placed == total
        assert stats.placed_on_quarantined == 1
        assert any(p.on_quarantined_core for p in placements)

    def test_unsafe_task_not_placed_on_quarantined_core(self):
        machines = _small_fleet()
        victim = machines[0].cores[0]
        victim.set_online(False)
        scheduler = FleetScheduler(
            machines,
            allow_safe_tasks=True,
            implicated_units_by_core={
                victim.core_id: frozenset({FunctionalUnit.VECTOR})
            },
        )
        _, total = scheduler.capacity()
        vector_mix = {Op.VADD: 1.0}
        tasks = [Task(f"t{i}", op_mix=vector_mix) for i in range(total)]
        _, stats = scheduler.schedule(tasks)
        assert stats.placed_on_quarantined == 0
        assert stats.unplaceable == 1
