"""Fault injector and susceptibility campaigns."""

import numpy as np
import pytest

from repro.silicon.core import Core
from repro.silicon.injector import (
    FaultInjector,
    InjectionCampaign,
    InjectionOutcome,
    InjectionPlan,
)
from repro.silicon.units import Op
from repro.workloads.base import WorkloadResult, digest_ints
from repro.workloads.generator import spec_by_name


def _fresh():
    return Core("inj/h", rng=np.random.default_rng(0))


class TestFaultInjector:
    def test_dry_run_is_transparent(self):
        injector = FaultInjector(_fresh(), InjectionPlan(at_op_index=None))
        assert injector.execute(Op.ADD, 2, 3) == 5
        assert not injector.injected

    def test_injects_exactly_once_at_index(self):
        injector = FaultInjector(
            _fresh(), InjectionPlan(at_op_index=1),
            rng=np.random.default_rng(1),
        )
        first = injector.execute(Op.ADD, 1, 1)
        second = injector.execute(Op.ADD, 1, 1)
        third = injector.execute(Op.ADD, 1, 1)
        assert first == 2 and third == 2
        assert second != 2
        assert injector.injected and injector.injected_op == Op.ADD

    def test_op_filter_restricts_counting(self):
        plan = InjectionPlan(at_op_index=0, ops=frozenset({Op.MUL}))
        injector = FaultInjector(_fresh(), plan, rng=np.random.default_rng(2))
        assert injector.execute(Op.ADD, 1, 1) == 2  # not counted
        assert injector.execute(Op.MUL, 2, 3) != 6  # injected

    def test_custom_transform(self):
        plan = InjectionPlan(
            at_op_index=0, transform=lambda value, rng: 0
        )
        injector = FaultInjector(_fresh(), plan)
        assert injector.execute(Op.ADD, 40, 2) == 0

    def test_tuple_results_injectable(self):
        injector = FaultInjector(
            _fresh(), InjectionPlan(at_op_index=0),
            rng=np.random.default_rng(3),
        )
        data = (1, 2, 3, 4)
        assert injector.execute(Op.COPY, data) != data


class TestInjectionCampaign:
    def test_site_counting_is_deterministic(self):
        work = spec_by_name("hashing").build(3)
        campaign = InjectionCampaign(work)
        assert campaign.count_sites() == campaign.count_sites() > 0

    def test_outcomes_partition_the_samples(self):
        work = spec_by_name("sorting").build(3)
        campaign = InjectionCampaign(work)
        report = campaign.run(n_sites=30, rng=np.random.default_rng(0))
        assert sum(report.outcomes.values()) == report.sampled == 30

    def test_unchecked_work_shows_silent_corruption(self):
        """A workload with NO self-check converts injected faults
        straight into silent corruption — the [11]-style result."""

        def unchecked(core):
            total = 0
            for value in range(200):
                total = core.execute(Op.ADD, total, value)
            return WorkloadResult(
                name="sum", output_digest=digest_ints([total])
            )

        campaign = InjectionCampaign(unchecked)
        report = campaign.run(n_sites=25, rng=np.random.default_rng(1))
        assert report.sdc_fraction > 0.5

    def test_checked_work_shows_detection(self):
        work = spec_by_name("hashing").build(5)
        campaign = InjectionCampaign(work)
        report = campaign.run(n_sites=40, rng=np.random.default_rng(2))
        detected = report.outcomes[InjectionOutcome.DETECTED]
        silent = report.outcomes[InjectionOutcome.SILENT_CORRUPTION]
        assert detected + silent + report.outcomes[InjectionOutcome.BENIGN] \
            + report.outcomes[InjectionOutcome.CRASHED] == 40

    def test_render_mentions_fractions(self):
        work = spec_by_name("hashing").build(5)
        report = InjectionCampaign(work).run(
            n_sites=10, rng=np.random.default_rng(3)
        )
        assert "injection campaign" in report.render()

    def test_empty_work_rejected(self):
        campaign = InjectionCampaign(
            lambda core: WorkloadResult(name="noop", output_digest=0)
        )
        with pytest.raises(ValueError):
            campaign.run(n_sites=1, rng=np.random.default_rng(0))
