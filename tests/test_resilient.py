"""ABFT matrix algorithms, resilient sorting, Blum–Kannan checkers."""

import numpy as np
import pytest

from repro.mitigation.resilient.checkers import (
    CheckFailedError,
    checked_computation,
    freivalds_check,
    permutation_check,
    sorting_checker,
)
from repro.mitigation.resilient.matfact import (
    AbftError,
    GF_PRIME,
    _gf_inv,
    _gf_mul,
    abft_matmul,
    checksummed_lu,
    gf_matmul,
    matmul,
)
from repro.mitigation.resilient.sorting import (
    SortVerificationError,
    multiset_checksums,
    redundant_order_check,
    resilient_sort,
    verify_sorted,
)
from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit


def _matrices(rng, n=5, bits=30):
    a = [[int(x) for x in row] for row in rng.integers(0, 2**bits, (n, n))]
    b = [[int(x) for x in row] for row in rng.integers(0, 2**bits, (n, n))]
    return a, b


def _mul_bad(seed=0, rate=5e-3):
    return Core(
        "rs/bad",
        defects=[StuckBitDefect("d", bit=9, base_rate=rate,
                                unit=FunctionalUnit.MUL_DIV)],
        rng=np.random.default_rng(seed),
    )


class TestGfField:
    def test_gf_mul_matches_bigint(self, healthy_core, rng):
        for _ in range(100):
            a = int(rng.integers(0, GF_PRIME))
            b = int(rng.integers(0, GF_PRIME))
            assert _gf_mul(healthy_core, a, b) == (a * b) % GF_PRIME

    def test_gf_inv_is_inverse(self, healthy_core, rng):
        for _ in range(10):
            a = int(rng.integers(1, GF_PRIME))
            inv = _gf_inv(healthy_core, a)
            assert _gf_mul(healthy_core, a, inv) == 1

    def test_inverse_of_zero_rejected(self, healthy_core):
        with pytest.raises(ZeroDivisionError):
            _gf_inv(healthy_core, 0)


class TestAbftMatmul:
    def test_healthy_equals_plain(self, healthy_core, rng):
        a, b = _matrices(rng)
        product, corrections = abft_matmul(healthy_core, a, b)
        assert corrections == 0
        assert product == matmul(healthy_core, a, b)

    def test_single_error_corrected(self, healthy_core, rng):
        a, b = _matrices(rng)
        expected = matmul(healthy_core, a, b)
        bad = _mul_bad(rate=2e-3)
        outcomes = {"clean": 0, "corrected": 0, "flagged": 0}
        for _ in range(10):
            try:
                product, corrections = abft_matmul(
                    bad, a, b, checker_core=healthy_core
                )
            except AbftError:
                outcomes["flagged"] += 1
                continue
            assert product == expected  # never silently wrong
            outcomes["corrected" if corrections else "clean"] += 1
        assert outcomes["corrected"] + outcomes["flagged"] > 0

    def test_never_silently_wrong(self, healthy_core, rng):
        """The ABFT guarantee that matters: flagged or right."""
        a, b = _matrices(rng, n=4)
        expected = matmul(healthy_core, a, b)
        bad = _mul_bad(seed=3, rate=8e-3)
        for _ in range(15):
            try:
                product, _ = abft_matmul(bad, a, b, checker_core=healthy_core)
            except AbftError:
                continue
            assert product == expected

    def test_dimension_validation(self, healthy_core):
        with pytest.raises(ValueError):
            matmul(healthy_core, [[1, 2]], [[1, 2]])


class TestChecksummedLu:
    def _dd_matrix(self, rng, n=5):
        m = [[int(x) for x in row] for row in rng.integers(1, 2**40, (n, n))]
        for i in range(n):
            m[i][i] += 2**50  # diagonal dominance avoids zero pivots
        return m

    def test_healthy_lu_reconstructs(self, healthy_core, rng):
        m = self._dd_matrix(rng)
        lower, upper, checks = checksummed_lu(healthy_core, m)
        assert checks > 0
        reconstructed = gf_matmul(healthy_core, lower, upper)
        assert reconstructed == [[v % GF_PRIME for v in row] for row in m]

    def test_lower_is_unit_triangular(self, healthy_core, rng):
        m = self._dd_matrix(rng)
        lower, upper, _ = checksummed_lu(healthy_core, m)
        n = len(m)
        assert all(lower[i][i] == 1 for i in range(n))
        assert all(lower[i][j] == 0 for i in range(n) for j in range(i + 1, n))
        assert all(upper[i][j] == 0 for i in range(n) for j in range(i))

    def test_corruption_detected_at_exact_step(self, rng):
        bad = _mul_bad(seed=1, rate=2e-3)
        detections = 0
        for _ in range(8):
            m = self._dd_matrix(rng)
            try:
                checksummed_lu(bad, m)
            except AbftError as error:
                detections += 1
                assert "elimination step" in str(error)
        assert detections > 0

    def test_non_square_rejected(self, healthy_core):
        with pytest.raises(ValueError):
            checksummed_lu(healthy_core, [[1, 2, 3], [4, 5, 6]])


class TestResilientSort:
    def test_healthy_sorts(self, healthy_pool, rng):
        values = [int(x) for x in rng.integers(0, 2**48, 200)]
        assert resilient_sort(healthy_pool, values) == sorted(values)

    def test_escapes_defective_comparator(self, healthy_pool, rng):
        bad = Core(
            "rs/cmp", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(2),
        )
        values = [int(x) for x in rng.integers(0, 2**48, 300)]
        result = resilient_sort([bad] + healthy_pool[:2], values)
        assert result == sorted(values)

    def test_all_defective_raises(self, rng):
        pool = [
            Core(f"rs/b{i}", defects=named_case("comparator_flip"),
                 rng=np.random.default_rng(i))
            for i in range(2)
        ]
        values = [int(x) for x in rng.integers(0, 2**48, 300)]
        with pytest.raises(SortVerificationError):
            resilient_sort(pool, values, max_attempts=2)

    def test_verify_rejects_dropped_element(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**48, 50)]
        bad_output = sorted(values)[:-1] + [0]
        assert not verify_sorted(healthy_core, values, sorted(bad_output))

    def test_verify_rejects_misorder(self, healthy_core):
        assert not verify_sorted(healthy_core, [3, 1, 2], [3, 1, 2])

    def test_redundant_order_check_healthy(self, healthy_core):
        assert redundant_order_check(healthy_core, [1, 2, 2, 3])
        assert not redundant_order_check(healthy_core, [2, 1])

    def test_multiset_checksums_permutation_invariant(self, healthy_core):
        a = multiset_checksums(healthy_core, [1, 2, 3])
        b = multiset_checksums(healthy_core, [3, 1, 2])
        assert a == b


class TestCheckers:
    def test_freivalds_accepts_correct_product(self, healthy_core, rng):
        a, b = _matrices(rng, n=4)
        c = matmul(healthy_core, a, b)
        assert freivalds_check(healthy_core, a, b, c)

    def test_freivalds_rejects_single_bit_error(self, healthy_core, rng):
        a, b = _matrices(rng, n=4)
        c = matmul(healthy_core, a, b)
        c[1][2] ^= 1
        assert not freivalds_check(
            healthy_core, a, b, c, rng=np.random.default_rng(0)
        )

    def test_permutation_check(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**40, 100)]
        assert permutation_check(healthy_core, values, sorted(values))
        tampered = sorted(values)
        tampered[0] ^= 1
        assert not permutation_check(healthy_core, values, tampered)

    def test_permutation_check_length_mismatch(self, healthy_core):
        assert not permutation_check(healthy_core, [1, 2], [1])

    def test_sorting_checker(self, healthy_core, rng):
        values = [int(x) for x in rng.integers(0, 2**40, 80)]
        assert sorting_checker(healthy_core, values, sorted(values))
        assert not sorting_checker(healthy_core, values, values)

    def test_checked_computation_retries_to_success(self, healthy_pool, rng):
        bad = Core(
            "rs/cc", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(5),
        )
        values = [int(x) for x in rng.integers(0, 2**40, 200)]
        from repro.workloads.sorting import merge_sort

        result, attempts = checked_computation(
            compute=lambda core: merge_sort(core, values),
            check=lambda core, out: sorting_checker(core, values, out),
            pool=[bad] + healthy_pool[:2],
        )
        assert result == sorted(values)
        assert attempts >= 2  # first attempt (bad core) was rejected

    def test_checked_computation_exhaustion(self, healthy_pool):
        with pytest.raises(CheckFailedError):
            checked_computation(
                compute=lambda core: 0,
                check=lambda core, out: False,
                pool=healthy_pool[:2],
                max_attempts=2,
            )
