"""CLI entry point."""

import pytest

from repro.cli import main


class TestCli:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("F1", "E1", "E14"):
            assert eid in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E13"]) == 0
        out = capsys.readouterr().out
        assert "E13" in out and "complaint" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e13"]) == 0

    def test_unknown_id_fails_politely(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_ci_scale_kwargs_accepted(self, capsys):
        assert main(["run", "E10", "--scale", "ci"]) == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cases_screens_all(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "self_inverting_aes" in out
        assert "confessed: True" in out
