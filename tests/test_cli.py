"""CLI entry point."""

import json

import pytest

import repro.cli
from repro.cli import main


@pytest.fixture
def quick_store(monkeypatch):
    """Shrink the E16 campaign so CLI plumbing tests stay fast."""
    monkeypatch.setitem(repro.cli._CI_KWARGS, "E16", dict(ticks=120))


class TestCli:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("F1", "E1", "E14"):
            assert eid in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "E13"]) == 0
        out = capsys.readouterr().out
        assert "E13" in out and "complaint" in out

    def test_run_lowercase_id(self, capsys):
        assert main(["run", "e13"]) == 0

    def test_unknown_id_fails_politely(self, capsys):
        assert main(["run", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_ci_scale_kwargs_accepted(self, capsys):
        assert main(["run", "E10", "--scale", "ci"]) == 0

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_cases_screens_all(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        assert "self_inverting_aes" in out
        assert "confessed: True" in out


class TestSeedFlag:
    def test_seed_is_forwarded_and_reproducible(self, capsys):
        assert main(["run", "E13", "--seed", "9"]) == 0
        first = capsys.readouterr().out
        assert main(["run", "E13", "--seed", "9"]) == 0
        second = capsys.readouterr().out
        # Strip the wall-clock line; everything else must match.
        strip = lambda s: [  # noqa: E731
            line for line in s.splitlines() if not line.startswith("[")
        ]
        assert strip(first) == strip(second)

    def test_seed_on_seedless_runner_warns_but_runs(
        self, capsys, monkeypatch
    ):
        from repro.analysis.experiments import EXPERIMENTS

        def seedless():
            return {"rendered": "seedless ok"}

        monkeypatch.setitem(EXPERIMENTS, "EX", ("seedless stub", seedless))
        assert main(["run", "EX", "--seed", "9"]) == 0
        captured = capsys.readouterr()
        assert "does not take a seed" in captured.err
        assert "seedless ok" in captured.out


class TestServeCommand:
    def test_serve_runs_the_chaos_campaign(self, capsys):
        assert main(["serve"]) == 0
        out = capsys.readouterr().out
        assert "E15" in out
        assert "hardened" in out

    def test_serve_accepts_a_seed(self, capsys):
        assert main(["serve", "--seed", "4"]) == 0
        assert "E15" in capsys.readouterr().out


class TestStoreCommand:
    def test_store_runs_the_chaos_campaign(self, capsys, quick_store):
        assert main(["store"]) == 0
        out = capsys.readouterr().out
        assert "E16" in out
        assert "protected" in out

    def test_store_is_listed(self, capsys):
        assert main(["list"]) == 0
        assert "E16" in capsys.readouterr().out


class TestJsonScorecards:
    def test_serve_json_is_strict_and_parseable(self, capsys):
        assert main(["serve", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "E15"
        assert set(payload["scorecards"]) == {
            "unhardened", "hardened", "validator_only"
        }
        assert "escape_rate" in payload["scorecards"]["hardened"]
        assert "escape_reduction" in payload["metrics"]

    def test_store_json_is_strict_and_parseable(self, capsys, quick_store):
        assert main(["store", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "E16"
        assert set(payload["scorecards"]) == {
            "unprotected", "quorum_only", "no_encrypt_verify",
            "generic_weights", "protected",
        }
        card = payload["scorecards"]["protected"]
        for field in (
            "escape_rate", "unrecoverable_loss_rate",
            "write_amplification", "quarantine_tick",
        ):
            assert field in card
        # Strict JSON end to end: metrics with non-finite values (an
        # infinite escape-rate reduction) must arrive as null, and the
        # whole document must survive a strict re-encode.
        json.dumps(payload, allow_nan=False)
        assert "escape_reduction" in payload["metrics"]

    def test_json_seed_is_reproducible(self, capsys, quick_store):
        assert main(["store", "--json", "--seed", "5"]) == 0
        first = capsys.readouterr().out
        assert main(["store", "--json", "--seed", "5"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestMetricsCommand:
    def test_metrics_prometheus_output(self, capsys):
        assert main(["metrics", "e15"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE serving_requests_total counter" in out
        assert "# TYPE serving_latency_ms histogram" in out
        assert 'serving_latency_ms_bucket{le="+Inf"}' in out

    def test_metrics_json_output(self, capsys):
        assert main(["metrics", "e16", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["storage_writes_total"]["kind"] == "counter"
        assert payload["storage_repair_latency_ms"]["kind"] == "histogram"

    def test_metrics_e1_source(self, capsys):
        assert main(["metrics", "e1", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fleet_ticks_total" in payload
        assert "detection_confusion" in payload

    def test_metrics_seed_is_reproducible(self, capsys):
        assert main(["metrics", "e15", "--seed", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["metrics", "e15", "--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestTraceCommand:
    def test_trace_e15_prints_incident_timeline(self, capsys):
        assert main(["trace", "e15"]) == 0
        out = capsys.readouterr().out
        assert "corruption forensics" in out
        assert "first corrupt op" in out
        assert "quarantine decision" in out
        assert "serving.request" in out

    def test_trace_e16_prints_incident_timeline(self, capsys):
        assert main(["trace", "e16"]) == 0
        out = capsys.readouterr().out
        assert "corruption forensics" in out
        assert "storage.put" in out

    def test_trace_seed_is_reproducible(self, capsys):
        assert main(["trace", "e15", "--seed", "2"]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "e15", "--seed", "2"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestBenchCommand:
    def test_bench_writes_scorecards(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "1")
        assert main([
            "bench", "build", "--scale", "ci",
            "--out-dir", str(tmp_path), "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        card = payload[0]
        assert card["bench_id"] == "build"
        assert card["scale"] == "ci"
        assert card["wall_s"] > 0
        assert card["speedup"] > 0
        on_disk = json.loads((tmp_path / "BENCH_BUILD.json").read_text())
        assert on_disk == card

    def test_bench_rejects_unknown_id(self, capsys):
        assert main(["bench", "nope"]) == 2
