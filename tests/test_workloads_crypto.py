"""AES-128 and the self-inverting defect."""

import numpy as np
import pytest

from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.workloads.crypto import (
    crypto_workload,
    decrypt_block,
    decrypt_ecb,
    encrypt_block,
    encrypt_ecb,
    expand_key,
)

KEY = bytes(range(16))
FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")


class TestFips197:
    def test_encrypt_matches_standard_vector(self, healthy_core):
        round_keys = expand_key(healthy_core, FIPS_KEY)
        assert encrypt_block(healthy_core, FIPS_PLAINTEXT, round_keys) == \
            FIPS_CIPHERTEXT

    def test_decrypt_inverts(self, healthy_core):
        round_keys = expand_key(healthy_core, FIPS_KEY)
        assert decrypt_block(healthy_core, FIPS_CIPHERTEXT, round_keys) == \
            FIPS_PLAINTEXT

    def test_key_schedule_first_and_last_words(self, healthy_core):
        round_keys = expand_key(healthy_core, FIPS_KEY)
        assert round_keys[0] == FIPS_KEY
        # FIPS-197 A.1: last round key for this key schedule.
        assert round_keys[10].hex() == "13111d7fe3944a17f307a78b4d2b30c5"

    def test_wrong_block_size_rejected(self, healthy_core):
        with pytest.raises(ValueError):
            encrypt_block(healthy_core, b"short", [])

    def test_wrong_key_size_rejected(self, healthy_core):
        with pytest.raises(ValueError):
            expand_key(healthy_core, b"short")


class TestEcbMode:
    def test_roundtrip_arbitrary_length(self, healthy_core):
        for size in (0, 1, 15, 16, 17, 100):
            data = bytes(range(size % 256))[:size] or b""
            data = (b"x" * size)
            ct = encrypt_ecb(healthy_core, data, KEY)
            assert decrypt_ecb(healthy_core, ct, KEY) == data

    def test_padding_always_added(self, healthy_core):
        ct = encrypt_ecb(healthy_core, b"0123456789abcdef", KEY)
        assert len(ct) == 32  # full extra block of padding

    def test_tampered_ciphertext_detected_by_padding(self, healthy_core):
        ct = bytearray(encrypt_ecb(healthy_core, b"hello", KEY))
        ct[-1] ^= 0xFF
        with pytest.raises(ValueError):
            decrypt_ecb(healthy_core, bytes(ct), KEY)


class TestSelfInvertingDefect:
    @pytest.fixture
    def defective(self):
        return Core(
            "aes/bad", defects=named_case("self_inverting_aes"),
            rng=np.random.default_rng(0),
        )

    def test_ciphertext_is_wrong(self, defective, healthy_core):
        message = b"attack at dawn!!" * 4
        assert encrypt_ecb(defective, message, KEY) != \
            encrypt_ecb(healthy_core, message, KEY)

    def test_same_core_roundtrip_is_identity(self, defective):
        message = b"attack at dawn!!" * 4
        ct = encrypt_ecb(defective, message, KEY)
        assert decrypt_ecb(defective, ct, KEY) == message

    def test_decryption_elsewhere_is_gibberish(self, defective, healthy_core):
        message = b"attack at dawn!!" * 4
        ct = encrypt_ecb(defective, message, KEY)
        try:
            elsewhere = decrypt_ecb(healthy_core, ct, KEY)
        except ValueError:
            return  # destroyed padding: definitely gibberish
        assert elsewhere != message

    def test_roundtrip_self_check_is_blind(self, defective):
        """The §2 trap: the natural self-check passes on the bad core."""
        result = crypto_workload(defective, b"secret payload", KEY)
        assert not result.app_detected
        assert not result.crashed


class TestCryptoWorkload:
    def test_healthy_clean(self, healthy_core):
        result = crypto_workload(healthy_core, b"data" * 16, KEY)
        assert not result.app_detected
        assert result.units == 5  # 64 bytes + padding = 5 blocks


class TestHealthyFastPath:
    """The block fast path must be invisible: same bytes, same counters.

    A healthy Core always returns golden results, so encrypt/decrypt/
    expand_key can shortcut the per-op Core.execute trip — but only if
    results AND the ops_executed accounting stay bit-for-bit identical
    to the per-op path.
    """

    def _per_op(self, fn, *args):
        from repro.silicon.golden import set_golden_cache

        core = Core("fast/ref")
        # Disabling the golden cache forces the per-op reference path.
        set_golden_cache(False)
        try:
            result = fn(core, *args)
        finally:
            set_golden_cache(True)
        return result, core.ops_executed

    def test_expand_key_matches_per_op_path(self):
        want, want_ops = self._per_op(expand_key, FIPS_KEY)
        core = Core("fast/a")
        assert expand_key(core, FIPS_KEY) == want
        assert core.ops_executed == want_ops

    def test_encrypt_matches_per_op_path(self):
        core = Core("fast/b")
        round_keys = expand_key(core, FIPS_KEY)
        want, want_ops = self._per_op(encrypt_block, FIPS_PLAINTEXT, round_keys)
        before = core.ops_executed
        assert encrypt_block(core, FIPS_PLAINTEXT, round_keys) == want == \
            FIPS_CIPHERTEXT
        assert core.ops_executed - before == want_ops

    def test_decrypt_matches_per_op_path(self):
        core = Core("fast/c")
        round_keys = expand_key(core, FIPS_KEY)
        want, want_ops = self._per_op(decrypt_block, FIPS_CIPHERTEXT, round_keys)
        before = core.ops_executed
        assert decrypt_block(core, FIPS_CIPHERTEXT, round_keys) == want == \
            FIPS_PLAINTEXT
        assert core.ops_executed - before == want_ops

    def test_mercurial_core_never_takes_the_fast_path(self):
        from repro.workloads.crypto import _fast_core

        defective = Core(
            "fast/bad", defects=named_case("self_inverting_aes"),
            rng=np.random.default_rng(1),
        )
        assert not _fast_core(defective)

    def test_offline_core_still_raises(self):
        from repro.silicon.errors import CoreOfflineError

        core = Core("fast/off")
        round_keys = expand_key(core, FIPS_KEY)
        core.set_online(False)
        with pytest.raises(CoreOfflineError):
            encrypt_block(core, FIPS_PLAINTEXT, round_keys)
