"""Instruction-level checking arms: policies, campaigns, the E18 grid.

The load-bearing physics pinned here:

- ITHICA (same-core duplication) catches probabilistic CEEs and is
  *blind* to deterministic ones — both executions corrupt identically;
- MEEK (cross-core checker) catches deterministic CEEs, and its
  bounded check-lag queue drops coverage honestly when overrun;
- RepTFD (checkpointed replay) both detects and *corrects* via
  rollback to another core;
- campaign scorecards are byte-identical with observability on or off
  and regardless of engine worker count.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.events import EventKind
from repro.mitigation.checkpoint import GranuleFailedError
from repro.mitigation.instrcheck import (
    ARMS,
    InstrCheckCampaign,
    InstrCheckConfig,
    InstrCheckStats,
    IthicaCheckedCore,
    MeekCheckedCore,
    OpSampler,
    ReplayChecker,
    build_instrcheck_fleet,
    result_digest,
)
from repro.silicon.assembler import assemble
from repro.silicon.core import Core
from repro.silicon.defects import OperandPatternDefect, StuckBitDefect
from repro.silicon.golden import golden_execute
from repro.silicon.units import FunctionalUnit, Op
from repro.silicon.vm import Vm


def _healthy(core_id="ic/h", seed=0):
    return Core(core_id, rng=np.random.default_rng(seed))


def _probabilistic_bad(core_id="ic/prob", rate=0.3, seed=1):
    """Stuck bit that corrupts a random subset of ALU ops."""
    return Core(
        core_id,
        defects=[StuckBitDefect("d", bit=13, base_rate=rate,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )


def _deterministic_bad(core_id="ic/det", seed=2):
    """Operand-pattern defect: *always* wrong on matching operands."""
    return Core(
        core_id,
        defects=[OperandPatternDefect("d", mask=0x0, value=0x0,
                                      error=1 << 9, base_rate=1.0,
                                      unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )


def _unit(n_ops=12, seed=5):
    rng = np.random.default_rng(seed)
    return tuple(
        (Op.ADD, (int(rng.integers(1 << 16)), int(rng.integers(1 << 16))))
        for _ in range(n_ops)
    )


class TestOpSampler:
    def test_rate_one_takes_everything(self):
        sampler = OpSampler(1.0)
        assert all(sampler.take(Op.ADD) for _ in range(50))

    def test_rate_zero_takes_nothing(self):
        sampler = OpSampler(0.0)
        assert not any(sampler.take(Op.ADD) for _ in range(50))

    def test_op_class_filter(self):
        sampler = OpSampler(1.0, ops=(Op.MUL,))
        assert not sampler.take(Op.ADD)
        assert sampler.take(Op.MUL)

    def test_fractional_rate_is_deterministic_and_plausible(self):
        sampler_a = OpSampler(0.33, seed=9)
        sampler_b = OpSampler(0.33, seed=9)
        taken_a = [sampler_a.take(Op.ADD) for _ in range(600)]
        taken_b = [sampler_b.take(Op.ADD) for _ in range(600)]
        assert taken_a == taken_b  # counter-hash, not RNG stream
        assert 0.2 < sum(taken_a) / 600 < 0.5

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            OpSampler(1.5)


class TestResultDigest:
    def test_scalar_and_tuple(self):
        assert result_digest(7) == result_digest(7)
        assert result_digest((1, 2)) != result_digest((2, 1))
        assert result_digest(3) != result_digest(4)


class TestIthica:
    def test_healthy_core_never_mismatches(self):
        wrapper = IthicaCheckedCore(_healthy(), sample_rate=1.0)
        for op, operands in _unit(40):
            wrapper.execute(op, *operands)
        assert wrapper.stats.mismatches == 0
        assert wrapper.stats.payload_ops == 40
        assert wrapper.stats.check_ops == 40
        assert wrapper.stats.slowdown_factor == 2.0

    def test_catches_probabilistic_defect(self):
        caught = []
        wrapper = IthicaCheckedCore(
            _probabilistic_bad(rate=0.4), sample_rate=1.0,
            on_mismatch=lambda c, op, tag: caught.append((c, op, tag)),
        )
        wrapper.tag = 17
        for op, operands in _unit(60):
            wrapper.execute(op, *operands)
        assert wrapper.stats.mismatches > 0
        assert caught and caught[0][0] == "ic/prob" and caught[0][2] == 17

    def test_blind_to_deterministic_defect(self):
        """The §2 self-inverting story: both executions flow through
        the same broken structure and corrupt identically, so the
        duplicate can never disagree — even at 100% sampling."""
        core = _deterministic_bad()
        wrapper = IthicaCheckedCore(core, sample_rate=1.0)
        for op, operands in _unit(60):
            wrapper.execute(op, *operands)
        assert core.corruptions_induced > 0  # it IS miscomputing
        assert wrapper.stats.mismatches == 0  # and ITHICA cannot see it


class TestMeek:
    def test_cross_core_catches_deterministic_defect(self):
        caught = []
        wrapper = MeekCheckedCore(
            _deterministic_bad(), _healthy("ic/checker"), sample_rate=1.0,
            on_mismatch=lambda c, op, tag: caught.append(c),
        )
        for op, operands in _unit(30):
            wrapper.execute(op, *operands)
        assert wrapper.stats.mismatches == 0  # nothing checked yet
        drained = wrapper.flush()
        assert drained == 30
        assert wrapper.stats.mismatches == 30
        assert set(caught) == {"ic/det"}  # blamed on the primary

    def test_flush_budget_and_lag(self):
        wrapper = MeekCheckedCore(
            _healthy(), _healthy("ic/checker", seed=3), sample_rate=1.0,
        )
        for op, operands in _unit(20):
            wrapper.execute(op, *operands)
        assert wrapper.lag == 20
        assert wrapper.flush(6) == 6
        assert wrapper.lag == 14

    def test_bounded_queue_drops_oldest_and_reports(self):
        overflows = []
        wrapper = MeekCheckedCore(
            _healthy(), _healthy("ic/checker", seed=3), sample_rate=1.0,
            lag_limit=8,
            on_overflow=lambda c, tag: overflows.append((c, tag)),
        )
        for op, operands in _unit(20):
            wrapper.execute(op, *operands)
        assert wrapper.lag == 8  # bounded
        assert wrapper.stats.lag_drops == 12
        assert len(overflows) == 12

    def test_lag_limit_validated(self):
        with pytest.raises(ValueError):
            MeekCheckedCore(_healthy(), _healthy("ic/c", seed=3),
                            sample_rate=1.0, lag_limit=0)


class TestReplayChecker:
    def test_divergence_rolls_back_to_healthy_core(self):
        """RepTFD detects *and corrects*: the granule diverges on the
        defective primary, rolls back, and re-runs on the next pool
        core — the returned digests match golden execution."""
        divergences = []
        bad = _deterministic_bad()
        checker = ReplayChecker(
            [bad, _healthy("ic/spare", seed=4)],
            _healthy("ic/replay", seed=5),
            sample_rate=1.0,
            on_divergence=lambda c, op, tag: divergences.append((c, tag)),
        )
        units = [_unit(8, seed=s) for s in range(3)]
        digests = checker.run_granule(units, tags=[10, 20, 30])
        expected = tuple(
            result_digest(
                tuple(
                    result_digest(golden_execute(op, *operands))
                    for op, operands in unit
                )
            )
            for unit in units
        )
        assert digests == expected
        assert divergences and divergences[0][0] == "ic/det"
        assert {tag for _c, tag in divergences} <= {10, 20, 30}
        assert checker.stats.replays >= 1
        assert checker.stats.mismatches >= 1

    def test_unsampled_granule_is_not_replayed(self):
        checker = ReplayChecker(
            [_deterministic_bad()], _healthy("ic/replay", seed=5),
            sample_rate=0.0,
        )
        digests = checker.run_granule([_unit(6)])
        assert len(digests) == 1
        assert checker.stats.replays == 0
        assert checker.stats.check_ops == 0

    def test_all_cores_bad_exhausts_pool(self):
        pool = [
            _deterministic_bad(f"ic/det{i}", seed=i) for i in range(2)
        ]
        checker = ReplayChecker(
            pool, _healthy("ic/replay", seed=5),
            sample_rate=1.0, max_attempts=2,
        )
        with pytest.raises(GranuleFailedError):
            checker.run_granule([_unit(6)])

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ReplayChecker([], _healthy())


def _run_arm(arm, prevalence=0.25, rate=1.0, units=96, seed=3, **cfg):
    machines, bad = build_instrcheck_fleet(prevalence=prevalence, seed=10)
    config = InstrCheckConfig(units=units, sample_rate=rate, **cfg)
    campaign = InstrCheckCampaign(machines, arm, config, seed=seed)
    return campaign, campaign.run(), bad


class TestCampaign:
    def test_unknown_arm_rejected(self):
        machines, _ = build_instrcheck_fleet()
        with pytest.raises(ValueError):
            InstrCheckCampaign(machines, "tmr")

    def test_fleet_builder_places_bad_cores_in_lanes(self):
        machines, bad = build_instrcheck_fleet(prevalence=0.25)
        assert len(bad) == 2
        # Low global indices: the scheduler hands these to lanes first.
        assert all(core_id.startswith("m00000/") for core_id in bad)

    def test_scorecard_accounting_closes(self):
        for arm in ARMS:
            _campaign, card, _bad = _run_arm(arm, units=64)
            assert card.units_total == 64
            assert card.units_delivered + card.units_crashed <= 64
            assert 0.0 <= card.coverage <= 1.0
            assert card.slowdown_factor >= 1.0
            json.dumps(card.to_json())  # JSON-safe

    def test_ithica_blind_meek_sighted_on_deterministic_core(self):
        """The headline E18 contrast at the prevalence step that adds
        a deterministic operand-pattern core."""
        _c1, ithica, bad = _run_arm("ithica", units=192)
        _c2, meek, _ = _run_arm("meek", units=192)
        det_core = bad[1]  # even global index -> OperandPatternDefect
        assert ithica.cees_escaped > 0
        assert det_core not in ithica.quarantine_tick
        assert meek.coverage > ithica.coverage
        assert det_core in meek.quarantine_tick

    def test_meek_full_rate_overruns_checker(self):
        campaign, card, _bad = _run_arm("meek", rate=1.0, units=128)
        assert card.lag_drops > 0
        assert any(
            e.kind is EventKind.CHECKER_LAG_OVERFLOW
            for e in campaign.events
        )
        # Overflow is lost coverage, not evidence: the breadcrumbs are
        # unattributed so healthy primaries are never condemned by them.
        assert all(
            e.core_id is None
            for e in campaign.events
            if e.kind is EventKind.CHECKER_LAG_OVERFLOW
        )

    def test_reptfd_corrects_what_it_catches(self):
        _campaign, card, _bad = _run_arm("reptfd", rate=1.0)
        assert card.cees_caught > 0
        assert card.cees_escaped == 0
        assert card.flagged_clean_units > 0  # rollback delivered truth
        assert card.replays > 0

    def test_screen_catches_cores_not_results(self):
        campaign, card, bad = _run_arm(
            "screen", rate=1.0, units=192, screen_interval_ticks=1
        )
        assert card.cees_caught == 0  # no in-flight checking at all
        assert card.screen_fails > 0
        assert set(bad) <= set(card.quarantine_tick)

    def test_catches_feed_quarantine_and_forensics(self):
        campaign, card, bad = _run_arm("meek", units=192)
        assert set(bad) <= set(card.quarantine_tick)
        for core_id in bad:
            assert core_id in card.first_corrupt_tick
            assert card.quarantine_tick[core_id] >= \
                card.first_corrupt_tick[core_id]
        assert set(card.detection_latency_ms) >= set(bad)
        kinds = {e.kind for e in campaign.events}
        assert EventKind.INSTRCHECK_MISMATCH in kinds

    def test_same_seed_is_reproducible(self):
        _c1, a, _ = _run_arm("reptfd", units=48)
        _c2, b, _ = _run_arm("reptfd", units=48)
        assert json.dumps(a.to_json(), sort_keys=True) == \
            json.dumps(b.to_json(), sort_keys=True)


@pytest.fixture
def obs_state():
    prior = obs.enabled()
    yield
    obs.set_enabled(prior)
    obs.metrics.reset()
    obs.tracer.reset()


class TestObservability:
    def test_scorecard_identical_obs_off_vs_on(self, obs_state):
        obs.set_enabled(False)
        _c, off_card, _ = _run_arm("meek", units=64)
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        _c, on_card, _ = _run_arm("meek", units=64)
        assert json.dumps(off_card.to_json(), sort_keys=True) == \
            json.dumps(on_card.to_json(), sort_keys=True)

    def test_declared_metrics_and_spans_emitted(self, obs_state):
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        _c, card, _ = _run_arm("reptfd", rate=1.0, units=64)
        families = set(obs.metrics.names())
        assert "instrcheck_ops_checked_total" in families
        assert "instrcheck_mismatches_total" in families
        assert "instrcheck_replays_total" in families
        assert "instrcheck_quarantines_total" in families
        spans = obs.tracer.drain()
        names = {span.name for span in spans}
        assert "instrcheck.unit" in names
        assert "instrcheck.replay" in names


class TestVmHook:
    SOURCE = """
        li r1, 10
        li r2, 0
        li r3, 1
    loop:
        add r2, r2, r1
        sub r1, r1, r3
        bne r1, r0, loop
        halt
    """

    def test_vm_runs_on_checked_core(self):
        """The VM's core parameter is the op-stream hook point: a
        checking wrapper slots in unchanged."""
        wrapper = IthicaCheckedCore(_healthy("vm/h"), sample_rate=1.0)
        result = Vm(wrapper).run(assemble(self.SOURCE))
        assert result.halted
        assert result.registers[2] == 55
        assert wrapper.stats.payload_ops > 0
        assert wrapper.stats.mismatches == 0

    def test_meek_wrapped_vm_catches_defective_core(self):
        wrapper = MeekCheckedCore(
            _deterministic_bad("vm/det"), _healthy("vm/checker", seed=8),
            sample_rate=1.0,
        )
        result = Vm(wrapper).run(assemble(self.SOURCE))
        assert result.halted
        wrapper.flush()
        assert wrapper.stats.mismatches > 0


class TestE18Grid:
    def test_registered_and_worker_invariant(self):
        from repro.analysis.experiments import EXPERIMENTS, run_instrcheck_grid

        assert "E18" in EXPERIMENTS

        def fingerprint(result):
            return json.dumps(
                {
                    p: {
                        arm: {r: card.to_json()
                              for r, card in by_rate.items()}
                        for arm, by_rate in arms.items()
                    }
                    for p, arms in result["grid"].items()
                },
                sort_keys=True,
            )

        kwargs = dict(units=64, prevalences=(0.25,), rates=(0.33, 1.0))
        serial = run_instrcheck_grid(workers=1, **kwargs)
        fanned = run_instrcheck_grid(workers=2, **kwargs)
        assert fingerprint(serial) == fingerprint(fanned)
        assert serial["rendered"]
        assert serial["arms"] == list(ARMS)
