"""Golden operation semantics."""

import pytest

from repro.silicon.golden import (
    AES_INV_SBOX,
    AES_SBOX,
    MASK64,
    _gf256_mul,
    golden_execute,
)
from repro.silicon.units import ALL_OPS, Op


class TestScalarArithmetic:
    def test_add_wraps_at_64_bits(self):
        assert golden_execute(Op.ADD, MASK64, 1) == 0

    def test_sub_wraps_below_zero(self):
        assert golden_execute(Op.SUB, 0, 1) == MASK64

    def test_mul_masks_to_64_bits(self):
        assert golden_execute(Op.MUL, 2**63, 2) == 0

    def test_mulh_returns_high_half(self):
        assert golden_execute(Op.MULH, 2**63, 4) == 2

    def test_div_is_unsigned_floor(self):
        assert golden_execute(Op.DIV, 7, 2) == 3

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            golden_execute(Op.DIV, 1, 0)

    def test_mod_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            golden_execute(Op.MOD, 1, 0)

    def test_neg_is_twos_complement(self):
        assert golden_execute(Op.NEG, 1) == MASK64

    def test_not_is_bitwise_complement(self):
        assert golden_execute(Op.NOT, 0) == MASK64

    def test_popcnt(self):
        assert golden_execute(Op.POPCNT, 0b10110) == 3


class TestShifts:
    def test_shl_modulo_word_size(self):
        assert golden_execute(Op.SHL, 1, 64) == 1  # shift count mod 64

    def test_shr_logical(self):
        assert golden_execute(Op.SHR, 2**63, 63) == 1

    def test_rotl_wraps_bits(self):
        assert golden_execute(Op.ROTL, 2**63, 1) == 1

    def test_rotl_zero_is_identity(self):
        assert golden_execute(Op.ROTL, 12345, 0) == 12345


class TestCompareAndBranch:
    def test_cmp_three_way(self):
        assert golden_execute(Op.CMP, 5, 5) == 0
        assert golden_execute(Op.CMP, 4, 5) == 1
        assert golden_execute(Op.CMP, 6, 5) == 2

    def test_beq(self):
        assert golden_execute(Op.BEQ, 3, 3) == 1
        assert golden_execute(Op.BEQ, 3, 4) == 0

    def test_blt_unsigned(self):
        # -1 as u64 is the max value, so it is NOT < 1.
        assert golden_execute(Op.BLT, MASK64, 1) == 0
        assert golden_execute(Op.BLT, 1, 2) == 1


class TestVectorOps:
    def test_vadd_lane_wise(self):
        assert golden_execute(Op.VADD, (1, 2), (10, 20)) == (11, 22)

    def test_vector_lane_mismatch_raises(self):
        with pytest.raises(ValueError):
            golden_execute(Op.VADD, (1, 2), (1,))

    def test_vdot(self):
        assert golden_execute(Op.VDOT, (1, 2, 3), (4, 5, 6)) == 32

    def test_vsum(self):
        assert golden_execute(Op.VSUM, (1, 2, 3, 4)) == 10

    def test_vperm_permutes(self):
        assert golden_execute(Op.VPERM, (10, 20, 30), (2, 0, 1)) == (30, 10, 20)

    def test_copy_is_identity(self):
        data = (1, 2, 3, MASK64)
        assert golden_execute(Op.COPY, data) == data


class TestAtomics:
    def test_cas_success(self):
        assert golden_execute(Op.CAS, 0, 0, 7) == 7

    def test_cas_failure_keeps_current(self):
        assert golden_execute(Op.CAS, 5, 0, 7) == 5

    def test_fetch_add(self):
        assert golden_execute(Op.FETCH_ADD, 10, 5) == 15

    def test_xchg_returns_new(self):
        assert golden_execute(Op.XCHG, 1, 2) == 2


class TestAesPrimitives:
    def test_sbox_known_values(self):
        # FIPS-197 appendix: S(0x00)=0x63, S(0x53)=0xED.
        assert AES_SBOX[0x00] == 0x63
        assert AES_SBOX[0x53] == 0xED

    def test_sbox_is_a_permutation(self):
        assert sorted(AES_SBOX) == list(range(256))

    def test_inv_sbox_inverts_sbox(self):
        for value in range(256):
            assert AES_INV_SBOX[AES_SBOX[value]] == value

    def test_gfmul_identity(self):
        for value in range(256):
            assert _gf256_mul(value, 1) == value

    def test_gfmul_known_product(self):
        # FIPS-197 example: {57} x {83} = {c1}.
        assert _gf256_mul(0x57, 0x83) == 0xC1

    def test_sbox_op_masks_input(self):
        assert golden_execute(Op.SBOX, 0x100) == AES_SBOX[0]


class TestDispatch:
    def test_unknown_op_raises_key_error(self):
        with pytest.raises(KeyError):
            golden_execute("frobnicate", 1)

    def test_every_declared_op_has_golden_semantics(self):
        from repro.silicon.golden import GOLDEN

        assert set(ALL_OPS) == set(GOLDEN)
