"""Forensics timeline reconstruction: synthetic and end-to-end.

The reconstructor joins three sources — unconditional first-corruption
bookkeeping, the CeeEvent signal stream, and scorecard quarantine
ticks — into per-incident stage latencies.  The end-to-end test runs a
real E15 chaos arm and checks the timeline is causally ordered.
"""

import pytest

from repro.core.events import CeeEvent, EventKind, Reporter
from repro.obs.forensics import (
    MS_PER_DAY,
    detection_latency_summary,
    latency_percentiles,
    render_forensics,
    span_stats,
)


def _event(ms: float, core_id: str, kind: EventKind) -> CeeEvent:
    return CeeEvent(
        time_days=ms / MS_PER_DAY,
        machine_id="m0",
        core_id=core_id,
        kind=kind,
        reporter=Reporter.AUTOMATED,
    )


class TestSyntheticTimeline:
    TICK_MS = 2.0

    def summary(self):
        events = [
            _event(8.0, "m0/c1", EventKind.APP_REPORT),
            _event(14.0, "m0/c1", EventKind.BREAKER_TRIP),
            _event(4.0, "m0/c9", EventKind.MACHINE_CHECK),  # other core
            _event(2.0, "m0/c1", EventKind.APP_REPORT),  # pre-corruption
        ]
        return detection_latency_summary(
            first_corrupt_tick={"m0/c1": 3},  # 6.0 ms
            quarantine_tick={"m0/c1": 10},    # 20.0 ms
            events=events,
            tick_ms=self.TICK_MS,
        )

    def test_stage_latencies(self):
        record = self.summary()["m0/c1"]
        assert record["first_corrupt_ms"] == 6.0
        assert record["first_signal_ms"] == 8.0
        assert record["quarantine_ms"] == 20.0
        assert record["corrupt_to_signal_ms"] == 2.0
        assert record["signal_to_quarantine_ms"] == 12.0
        assert record["corrupt_to_quarantine_ms"] == 14.0

    def test_only_post_corruption_signals_attributed(self):
        record = self.summary()["m0/c1"]
        # the 2.0 ms APP_REPORT predates corruption; c9's MCE is not ours
        assert record["n_signals"] == 2
        assert record["signal_kinds"] == {
            "app_report": 1, "breaker_trip": 1,
        }

    def test_unquarantined_core_has_none_stages(self):
        summary = detection_latency_summary(
            first_corrupt_tick={"m0/c1": 3},
            quarantine_tick={},
            events=[],
            tick_ms=self.TICK_MS,
        )
        record = summary["m0/c1"]
        assert record["first_signal_ms"] is None
        assert record["quarantine_ms"] is None
        assert record["corrupt_to_quarantine_ms"] is None
        assert record["signal_latency_p50_ms"] is None

    def test_latency_percentiles_skip_none(self):
        summary = {
            "a": {"corrupt_to_quarantine_ms": 10.0},
            "b": {"corrupt_to_quarantine_ms": None},
            "c": {"corrupt_to_quarantine_ms": 30.0},
        }
        pcts = latency_percentiles(summary)
        assert pcts["n"] == 2
        assert pcts["p50"] == pytest.approx(20.0)

    def test_render_contains_timeline_lines(self):
        text = render_forensics(
            "synthetic", self.summary(), [], [], self.TICK_MS,
            quarantine_tick={"m0/c1": 10, "m0/c9": 12},
        )
        assert "incident core m0/c1" in text
        assert "first corrupt op" in text
        assert "first signal" in text
        assert "quarantine decision" in text
        # c9 was quarantined without ever demonstrably corrupting
        assert "collateral quarantines" in text
        assert "m0/c9@tick12" in text


class TestSpanStats:
    def test_counts_durations_errors(self):
        from repro.obs.spans import Tracer

        tracer = Tracer()
        now = {"ms": 0.0}
        tracer.set_clock(lambda: now["ms"])
        with tracer.span("op"):
            now["ms"] = 4.0
        with pytest.raises(RuntimeError):
            with tracer.span("op"):
                raise RuntimeError
        stats = span_stats(tracer.spans())
        assert stats["op"]["count"] == 2
        assert stats["op"]["total_ms"] == pytest.approx(4.0)
        assert stats["op"]["errors"] == 1


class TestEndToEndE15:
    """`repro trace e15` reproduces a full incident timeline."""

    @pytest.fixture(scope="class")
    def incident(self):
        from repro import obs
        from repro.analysis.experiments import _serving_campaign
        from repro.serving.campaign import CampaignConfig

        prior = obs.enabled()
        obs.set_enabled(True)
        obs.metrics.reset()
        obs.tracer.reset()
        try:
            card, events, bad_core_id = _serving_campaign(
                "hardened", ticks=250, n_machines=4, cores_per_machine=4,
                defect_rate=0.05, seed=0, onset_age=400.0,
            )
            spans = obs.tracer.drain()
        finally:
            obs.set_enabled(prior)
        return card, events, bad_core_id, spans, CampaignConfig().tick_ms

    def test_bad_core_timeline_is_causally_ordered(self, incident):
        card, _events, bad_core_id, _spans, _tick_ms = incident
        record = card.detection_latency_ms[bad_core_id]
        assert record["first_corrupt_ms"] <= record["first_signal_ms"]
        assert record["first_signal_ms"] <= record["quarantine_ms"]
        assert record["corrupt_to_quarantine_ms"] >= 0

    def test_scorecard_embeds_summary(self, incident):
        card, _events, bad_core_id, _spans, _tick_ms = incident
        payload = card.to_json()
        assert bad_core_id in payload["first_corrupt_tick"]
        assert bad_core_id in payload["detection_latency_ms"]

    def test_rendered_report(self, incident):
        card, events, bad_core_id, spans, tick_ms = incident
        text = render_forensics(
            "e2e", card.detection_latency_ms, events, spans, tick_ms,
            quarantine_tick=card.quarantine_tick,
        )
        assert f"incident core {bad_core_id}" in text
        assert "serving.request" in text
        assert "spans:" in text

    def test_request_spans_cover_campaign(self, incident):
        _card, _events, _bad, spans, _tick_ms = incident
        names = {s.name for s in spans}
        assert {"serving.request", "serving.serve"} <= names
        # quarantine decision leaves its marker span too
        assert "serving.quarantine" in names
