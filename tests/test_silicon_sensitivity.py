"""Environment sensitivities, including the low-frequency anomaly."""

import pytest

from repro.silicon.environment import DvfsTable, NOMINAL
from repro.silicon.sensitivity import (
    ComposedSensitivity,
    FlatSensitivity,
    FrequencySensitivity,
    ThermalSensitivity,
    VoltageMarginSensitivity,
)


class TestFlat:
    def test_always_one(self):
        sens = FlatSensitivity()
        assert sens.multiplier(NOMINAL) == 1.0
        assert sens.multiplier(NOMINAL.with_temperature(120.0)) == 1.0


class TestFrequency:
    def test_unity_at_reference(self):
        sens = FrequencySensitivity(factor_per_ghz=4.0)
        assert sens.multiplier(NOMINAL) == pytest.approx(1.0)

    def test_grows_with_frequency(self):
        sens = FrequencySensitivity(factor_per_ghz=4.0)
        fast = NOMINAL.scaled(frequency_ghz=4.0, voltage_v=1.2)
        assert sens.multiplier(fast) == pytest.approx(4.0)

    def test_shrinks_below_reference(self):
        sens = FrequencySensitivity(factor_per_ghz=4.0)
        slow = NOMINAL.scaled(frequency_ghz=2.0, voltage_v=0.85)
        assert sens.multiplier(slow) == pytest.approx(0.25)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            FrequencySensitivity(factor_per_ghz=0.0)


class TestVoltageMargin:
    def test_undervolt_raises_rate(self):
        sens = VoltageMarginSensitivity(factor_per_50mv=3.0)
        sagged = NOMINAL.scaled(frequency_ghz=3.0, voltage_v=0.95)
        assert sens.multiplier(sagged) == pytest.approx(3.0)

    def test_overvolt_lowers_rate(self):
        sens = VoltageMarginSensitivity(factor_per_50mv=3.0)
        boosted = NOMINAL.scaled(frequency_ghz=3.0, voltage_v=1.05)
        assert sens.multiplier(boosted) == pytest.approx(1 / 3.0)


class TestThermal:
    def test_hotter_is_worse(self):
        sens = ThermalSensitivity(factor_per_10c=2.0)
        assert sens.multiplier(NOMINAL.with_temperature(70.0)) == pytest.approx(2.0)
        assert sens.multiplier(NOMINAL.with_temperature(50.0)) == pytest.approx(0.5)


class TestComposed:
    def test_multiplies_parts(self):
        sens = ComposedSensitivity(
            [FrequencySensitivity(2.0), ThermalSensitivity(2.0)]
        )
        point = NOMINAL.scaled(frequency_ghz=4.0, voltage_v=1.1).with_temperature(70.0)
        assert sens.multiplier(point) == pytest.approx(2.0 * 2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ComposedSensitivity([])


class TestLowFrequencyAnomaly:
    def test_voltage_defect_inverts_frequency_sweep(self):
        """§5: 'lower frequency sometimes (surprisingly) increases the
        failure rate' — because DVFS couples low f with low V, and a
        voltage-margin defect cares about V, a frequency sweep along
        the DVFS ladder shows an inverted trend."""
        sens = VoltageMarginSensitivity(factor_per_50mv=3.0)
        table = DvfsTable()
        multipliers = [
            sens.multiplier(table.operating_point(i))
            for i in range(len(table.states))
        ]
        # Monotonically decreasing with DVFS state (i.e. increasing as
        # frequency drops).
        assert multipliers == sorted(multipliers, reverse=True)
        assert multipliers[0] > multipliers[-1] * 10
