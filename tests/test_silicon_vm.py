"""Assembler and VM."""

import numpy as np
import pytest

from repro.silicon.assembler import AssemblyError, assemble
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.isa import VLEN, Instruction, validate
from repro.silicon.units import FunctionalUnit, Op
from repro.silicon.vm import Vm


def run(source, core=None, memory_image=(), **kwargs):
    core = core or Core("vm/h", rng=np.random.default_rng(0))
    return Vm(core, **kwargs).run(assemble(source), memory_image=memory_image)


class TestAssembler:
    def test_labels_and_branches(self):
        program = assemble("""
        start:
            li r1, 5
            jmp end
            li r1, 99
        end:
            halt
        """)
        assert program[1].mnemonic == "jmp"
        assert program[1].operands == (3,)

    def test_comments_stripped(self):
        program = assemble("li r1, 1 ; comment\n# full comment line\nhalt")
        assert len(program) == 2

    def test_hex_immediates(self):
        program = assemble("li r1, 0xFF\nhalt")
        assert program[0].operands == (1, 255)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("frob r1, r2")

    def test_unknown_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("jmp nowhere")

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("a:\na:\nhalt")

    def test_wrong_operand_count_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2")

    def test_register_out_of_range_rejected(self):
        with pytest.raises(AssemblyError):
            assemble("add r1, r2, r16")

    def test_validate_rejects_bad_instruction(self):
        with pytest.raises(ValueError):
            validate(Instruction("add", (1, 2)))


class TestVmExecution:
    def test_arithmetic_loop(self):
        result = run("""
            li r1, 10
            li r2, 0
            li r3, 1
        loop:
            add r2, r2, r1
            sub r1, r1, r3
            bne r1, r0, loop
            halt
        """)
        assert result.halted
        assert result.registers[2] == 55

    def test_memory_load_store(self):
        result = run("""
            li r1, 100
            li r2, 42
            st r1, r2
            ld r3, r1
            halt
        """)
        assert result.memory[100] == 42
        assert result.registers[3] == 42

    def test_block_copy(self):
        result = run(
            """
            li r1, 0
            li r2, 10
            cpy r2, r1, 4
            halt
            """,
            memory_image=[5, 6, 7, 8],
        )
        assert result.memory[10:14] == [5, 6, 7, 8]

    def test_vector_roundtrip(self):
        image = list(range(1, VLEN + 1)) + list(range(10, 10 + VLEN))
        result = run(
            f"""
            li r1, 0
            li r2, {VLEN}
            vld v0, r1
            vld v1, r2
            vadd v2, v0, v1
            vsum r3, v2
            halt
            """,
            memory_image=image,
        )
        assert result.registers[3] == sum(image)

    def test_atomics(self):
        result = run("""
            li r1, 50
            cas r2, r1, r0, 7   ; mem[50]==0 expected 0 -> becomes 7
            fadd r3, r1, r2     ; r2 is old value (0): mem[50] += 0
            halt
        """)
        assert result.memory[50] == 7

    def test_divide_by_zero_traps(self):
        result = run("li r1, 4\ndiv r2, r1, r0\nhalt")
        assert result.trap == "divide_by_zero"
        assert result.crashed

    def test_segfault_traps(self):
        result = run("li r1, 999999\nld r2, r1\nhalt")
        assert result.trap == "segfault"

    def test_budget_exhaustion_traps(self):
        result = run("loop: jmp loop", step_budget=100)
        assert result.trap == "budget_exhausted"
        assert result.steps == 100

    def test_sbox_instruction(self):
        result = run("li r1, 0\nsbox r2, r1\nhalt")
        assert result.registers[2] == 0x63


class TestVmWithDefects:
    def test_defective_alu_changes_program_output(self):
        source = """
            li r1, 200
            li r2, 0
            li r3, 1
        loop:
            add r2, r2, r1
            sub r1, r1, r3
            bne r1, r0, loop
            halt
        """
        healthy = run(source)
        bad_core = Core(
            "vm/bad",
            defects=[
                StuckBitDefect("d", bit=7, base_rate=0.05,
                               unit=FunctionalUnit.ALU)
            ],
            rng=np.random.default_rng(2),
        )
        defective = run(source, core=bad_core)
        assert defective.registers[2] != healthy.registers[2]

    def test_branch_defect_changes_control_flow(self):
        source = """
            li r1, 40
            li r3, 1
            li r2, 0
        loop:
            add r2, r2, r3
            sub r1, r1, r3
            bne r1, r0, loop
            halt
        """
        bad_core = Core(
            "vm/branch",
            defects=[StuckBitDefect("d", bit=0, base_rate=0.2, ops=(Op.BEQ,))],
            rng=np.random.default_rng(3),
        )
        result = run(source, core=bad_core, step_budget=2000)
        healthy = run(source)
        # Either early exit (wrong count) or runaway loop (budget trap).
        assert result.registers[2] != healthy.registers[2] or result.crashed
