"""Signal analysis and the sanitizer model."""

import numpy as np

from repro.core.events import CeeEvent, EventKind, EventLog, Reporter
from repro.detection.sanitizer import SanitizerModel
from repro.detection.signals import DEFAULT_WEIGHTS, SignalAnalyzer
from repro.detection.weights import (
    SUSPICION_WEIGHTS,
    default_weights,
    describe_weights,
)


def _event(core, kind=EventKind.CRASH, t=0.0, machine="m0", app="app"):
    return CeeEvent(
        time_days=t, machine_id=machine, core_id=core, kind=kind,
        reporter=Reporter.AUTOMATED, application=app,
    )


class TestSignalAnalyzer:
    def test_attributed_event_raises_core_suspicion(self):
        analyzer = SignalAnalyzer()
        analyzer.ingest(_event("m0/c1", EventKind.MACHINE_CHECK))
        assert analyzer.tracker.score("m0/c1", 0.0) == \
            DEFAULT_WEIGHTS[EventKind.MACHINE_CHECK]

    def test_screen_fail_weighs_most_of_single_observations(self):
        # A breaker trip is an aggregate of several correlated failures,
        # so it may outweigh everything; among *single*-observation
        # signals, a confessed screening failure stays the strongest.
        singles = {
            kind: weight for kind, weight in DEFAULT_WEIGHTS.items()
            if kind is not EventKind.BREAKER_TRIP
        }
        assert DEFAULT_WEIGHTS[EventKind.SCREEN_FAIL] == max(singles.values())
        assert DEFAULT_WEIGHTS[EventKind.BREAKER_TRIP] == max(
            DEFAULT_WEIGHTS.values()
        )

    def test_unattributed_event_spread_over_machine(self):
        analyzer = SignalAnalyzer(
            cores_by_machine={"m0": ["m0/c0", "m0/c1"]}
        )
        analyzer.ingest(_event(None, EventKind.CRASH, machine="m0"))
        assert analyzer.tracker.score("m0/c0", 0.0) > 0
        assert analyzer.tracker.score("m0/c0", 0.0) == \
            analyzer.tracker.score("m0/c1", 0.0)

    def test_unattributed_event_on_unknown_machine_dropped(self):
        analyzer = SignalAnalyzer()
        analyzer.ingest(_event(None, EventKind.CRASH, machine="ghost"))
        assert analyzer.tracker.tracked_cores() == []

    def test_repeated_signals_become_suspects(self):
        analyzer = SignalAnalyzer()
        for t in range(3):
            analyzer.ingest(_event("m0/c7", EventKind.SELF_CHECK_FAILURE,
                                   t=float(t)))
        suspects = analyzer.suspects(now_days=3.0, threshold=2.0)
        assert suspects and suspects[0][0] == "m0/c7"

    def test_register_machine_after_construction(self):
        analyzer = SignalAnalyzer()
        analyzer.register_machine("m9", ["m9/c0"])
        analyzer.ingest(_event(None, machine="m9"))
        assert analyzer.tracker.score("m9/c0", 0.0) > 0

    def test_ingest_all(self):
        analyzer = SignalAnalyzer()
        analyzer.ingest_all([_event("m0/c0"), _event("m0/c0")])
        assert analyzer.tracker.signals("m0/c0") == 2


class TestSuspicionWeightTable:
    def test_every_event_kind_has_an_explicit_weight(self):
        # The completeness invariant the weights module promises: a new
        # EventKind without a documented weight is a test failure, not a
        # silent 1.0 default somewhere in the analyzer.
        missing = [k for k in EventKind if k not in SUSPICION_WEIGHTS]
        assert missing == []
        extra = [k for k in SUSPICION_WEIGHTS if k not in set(EventKind)]
        assert extra == []

    def test_every_weight_is_positive_and_justified(self):
        for kind, entry in SUSPICION_WEIGHTS.items():
            assert entry.weight > 0, kind
            assert entry.rationale.strip(), kind

    def test_analyzer_defaults_come_from_the_table(self):
        assert DEFAULT_WEIGHTS == default_weights()
        assert DEFAULT_WEIGHTS == {
            kind: entry.weight for kind, entry in SUSPICION_WEIGHTS.items()
        }

    def test_describe_weights_lists_all_kinds_heaviest_first(self):
        lines = describe_weights().splitlines()
        assert len(lines) == len(EventKind)
        weights = [float(line.split()[1]) for line in lines]
        assert weights == sorted(weights, reverse=True)
        for kind in EventKind:
            assert any(line.startswith(kind.value) for line in lines)


class TestSanitizerModel:
    def test_catch_probability_respected(self):
        log = EventLog()
        model = SanitizerModel(np.random.default_rng(0), catch_probability=1.0)
        assert model.observe_corruption(log, 1.0, "m0", "m0/c0", "app")
        assert len(log) == 1
        assert log.filter(kind=EventKind.SANITIZER)

    def test_zero_catch_probability_never_emits(self):
        log = EventLog()
        model = SanitizerModel(np.random.default_rng(0), catch_probability=0.0)
        for _ in range(50):
            assert not model.observe_corruption(log, 1.0, "m0", "m0/c0", "a")
        assert len(log) == 0

    def test_background_noise_is_unattributed(self):
        log = EventLog()
        model = SanitizerModel(
            np.random.default_rng(1), background_rate_per_machineday=0.5
        )
        emitted = model.emit_background(
            log, time_days=0.0, machine_ids=["m0", "m1"], span_days=30.0
        )
        assert emitted == len(log) > 0
        assert all(event.core_id is None for event in log)

    def test_background_respects_empty_fleet(self):
        model = SanitizerModel(np.random.default_rng(0))
        assert model.emit_background(EventLog(), 0.0, [], 10.0) == 0
