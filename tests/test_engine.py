"""Contract tests for the parallel trial engine (repro.engine.runner).

The engine's promise is layout-independence: the same (fn, items, seed)
produce the same ordered results no matter how the work is chunked or
how many workers execute it.  Crashes must surface as errors, never as
hangs or silently-missing results.
"""

import pytest

from repro.engine import (
    Trial,
    TrialEngine,
    WorkerCrashError,
    derive_trial_seeds,
    resolve_workers,
    run_tasks,
    run_trials,
)
from repro.silicon.golden import (
    GOLDEN,
    golden_cache_clear,
    golden_cache_info,
    golden_call,
    golden_execute,
    set_golden_cache,
)
from repro.silicon.isa import Op


# Worker functions must live at module level: closures don't pickle
# across the process pool.
def _square(x):
    return x * x


def _trial_tag(trial):
    return (trial.index, trial.seed)


def _crash(x):
    import os

    os._exit(3)


def _explode(x):
    raise ValueError(f"bad item {x}")


class TestSeeds:
    def test_length_uniqueness_range(self):
        seeds = derive_trial_seeds(42, 64)
        assert len(seeds) == 64
        assert len(set(seeds)) == 64
        assert all(0 <= s < 2**63 for s in seeds)

    def test_prefix_stable(self):
        # Trial i's seed depends only on (root seed, i), so widening a
        # sweep never perturbs the trials already run.
        assert derive_trial_seeds(42, 3) == derive_trial_seeds(42, 5)[:3]

    def test_seed_sensitivity(self):
        assert derive_trial_seeds(1, 4) != derive_trial_seeds(2, 4)

    def test_zero_trials(self):
        assert derive_trial_seeds(7, 0) == []


class TestRunTasks:
    def test_empty(self):
        assert run_tasks(_square, [], workers=2) == []

    def test_single_item_runs_inline(self):
        assert run_tasks(_square, [5], workers=4) == [25]

    @pytest.mark.parametrize("n", [1, 2, 7])
    @pytest.mark.parametrize("chunk_size", [None, 1, 3])
    def test_order_matches_serial(self, n, chunk_size):
        items = list(range(n))
        expected = [x * x for x in items]
        serial = run_tasks(_square, items, workers=1, chunk_size=chunk_size)
        pooled = run_tasks(_square, items, workers=2, chunk_size=chunk_size)
        assert serial == expected
        assert pooled == expected

    def test_worker_crash_is_an_error_not_a_hang(self):
        with pytest.raises(WorkerCrashError, match="worker process"):
            run_tasks(_crash, list(range(4)), workers=2)

    def test_exceptions_propagate(self):
        with pytest.raises(ValueError, match="bad item"):
            run_tasks(_explode, [1, 2], workers=2)
        with pytest.raises(ValueError, match="bad item"):
            run_tasks(_explode, [1, 2], workers=1)

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            resolve_workers(0)


class TestRunTrials:
    def test_zero_trials(self):
        assert run_trials(_trial_tag, 0, seed=9) == []

    def test_negative_trials(self):
        with pytest.raises(ValueError):
            run_trials(_trial_tag, -1, seed=9)

    def test_worker_invariant(self):
        one = run_trials(_trial_tag, 5, seed=33, workers=1)
        two = run_trials(_trial_tag, 5, seed=33, workers=2)
        assert one == two
        assert [i for i, _ in one] == [0, 1, 2, 3, 4]
        assert [s for _, s in one] == derive_trial_seeds(33, 5)

    def test_engine_wrapper(self):
        engine = TrialEngine(workers=2, chunk_size=2)
        assert engine.run_trials(_trial_tag, 3, seed=1) == \
            run_trials(_trial_tag, 3, seed=1, workers=1)
        assert engine.run_tasks(_square, [1, 2, 3]) == [1, 4, 9]

    def test_trial_is_frozen(self):
        trial = Trial(index=0, seed=5)
        with pytest.raises(AttributeError):
            trial.seed = 6


class TestGoldenCache:
    def setup_method(self):
        golden_cache_clear()

    def test_cached_matches_uncached(self):
        samples = [
            (Op.ADD, (3, 4)),
            (Op.MUL, (7, 9)),
            (Op.DIV, (22, 7)),
            (Op.XOR, (0xFF, 0x0F)),
        ]
        for op, operands in samples:
            if op not in GOLDEN:
                continue
            assert golden_call(op, operands) == golden_execute(op, *operands)
            # Second call comes from the cache and must agree too.
            assert golden_call(op, operands) == golden_execute(op, *operands)

    def test_div_by_zero_raises_every_time(self):
        with pytest.raises(ZeroDivisionError):
            golden_call(Op.DIV, (1, 0))
        with pytest.raises(ZeroDivisionError):
            golden_call(Op.DIV, (1, 0))

    def test_unknown_op_raises_keyerror(self):
        with pytest.raises(KeyError):
            golden_call("NOT_AN_OP", (1, 2))

    def test_cache_hit_counted(self):
        # GFMUL is in MEMOIZED_OPS (bit-loop golden fn); trivial scalar
        # ops like ADD dispatch directly and never touch the LRUs.
        golden_call(Op.GFMUL, (3, 7))
        before = golden_cache_info().hits
        golden_call(Op.GFMUL, (3, 7))
        assert golden_cache_info().hits == before + 1

    def test_trivial_ops_not_memoized(self):
        golden_cache_clear()
        golden_call(Op.ADD, (1, 2))
        golden_call(Op.ADD, (1, 2))
        info = golden_cache_info()
        assert info.hits == 0 and info.misses == 0

    def test_disable_falls_back_to_direct(self):
        set_golden_cache(False)
        try:
            assert golden_call(Op.MUL, (6, 7)) == golden_execute(Op.MUL, 6, 7)
        finally:
            set_golden_cache(True)
