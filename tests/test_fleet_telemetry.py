"""MCE log and crash-dump analyzers."""

import numpy as np
import pytest

from repro.core.events import EventKind, EventLog
from repro.fleet.telemetry import (
    CrashDump,
    CrashDumpAnalyzer,
    MceLogAnalyzer,
    MceRecord,
    fleet_health_dashboard,
)


def _mce(core="m0/c1", corrected=False, t=0.0):
    return MceRecord(time_days=t, machine_id="m0", bank=3,
                     core_id=core, corrected=corrected)


class TestMceAnalyzer:
    def test_uncorrected_always_becomes_event(self):
        log = EventLog()
        analyzer = MceLogAnalyzer()
        added = analyzer.analyze([_mce(corrected=False)], log)
        assert added == 1
        assert log.filter(kind=EventKind.MACHINE_CHECK)

    def test_corrected_errors_suppressed_below_threshold(self):
        log = EventLog()
        analyzer = MceLogAnalyzer(corrected_excess_threshold=5)
        analyzer.analyze([_mce(corrected=True, t=float(i)) for i in range(4)], log)
        assert len(log) == 0

    def test_corrected_recidivism_surfaces_once(self):
        log = EventLog()
        analyzer = MceLogAnalyzer(corrected_excess_threshold=5)
        analyzer.analyze(
            [_mce(corrected=True, t=float(i)) for i in range(12)], log
        )
        events = log.filter(kind=EventKind.MACHINE_CHECK)
        assert len(events) == 1
        assert "recidivism" in events[0].detail
        assert analyzer.corrected_recidivists() == [("m0/c1", 12)]

    def test_unscoped_corrected_records_ignored(self):
        log = EventLog()
        analyzer = MceLogAnalyzer(corrected_excess_threshold=2)
        analyzer.analyze(
            [_mce(core=None, corrected=True, t=float(i)) for i in range(5)],
            log,
        )
        assert len(log) == 0


class TestCrashDumps:
    def test_pinned_fraction_controls_attribution(self):
        analyzer = CrashDumpAnalyzer(np.random.default_rng(0),
                                     pinned_fraction=1.0)
        dump = analyzer.synthesize_dump(1.0, "m0", "m0/c3")
        assert dump.pinned_core_id == "m0/c3"
        analyzer = CrashDumpAnalyzer(np.random.default_rng(0),
                                     pinned_fraction=0.0)
        dump = analyzer.synthesize_dump(1.0, "m0", "m0/c3")
        assert dump.pinned_core_id is None

    def test_analyze_emits_crash_events(self):
        log = EventLog()
        analyzer = CrashDumpAnalyzer(np.random.default_rng(0))
        dumps = [
            CrashDump(time_days=1.0, machine_id="m0", process="db",
                      pinned_core_id="m0/c1"),
            CrashDump(time_days=2.0, machine_id="m1", process="kernel",
                      pinned_core_id=None, kernel=True),
        ]
        assert analyzer.analyze(dumps, log) == 2
        events = log.filter(kind=EventKind.CRASH)
        assert events[0].core_id == "m0/c1"
        assert events[1].core_id is None
        assert "kernel" in events[1].detail

    def test_invalid_pinned_fraction(self):
        with pytest.raises(ValueError):
            CrashDumpAnalyzer(np.random.default_rng(0), pinned_fraction=1.5)


class TestDashboard:
    def test_ranks_by_signal_volume(self):
        log = EventLog()
        analyzer = MceLogAnalyzer()
        analyzer.analyze(
            [_mce(core="m0/c1"), _mce(core="m0/c1"), _mce(core="m2/c0")],
            log,
        )
        dashboard = fleet_health_dashboard(log)
        assert dashboard[0].core_id == "m0/c1"
        assert dashboard[0].machine_checks == 2
        assert dashboard[0].total_signals == 2

    def test_top_n_limit(self):
        log = EventLog()
        analyzer = MceLogAnalyzer()
        analyzer.analyze(
            [_mce(core=f"m{i}/c0") for i in range(20)], log
        )
        assert len(fleet_health_dashboard(log, top_n=5)) == 5

    def test_empty_log_empty_dashboard(self):
        assert fleet_health_dashboard(EventLog()) == []
