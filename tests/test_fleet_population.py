"""Products, population synthesis, lifecycle."""

import numpy as np
import pytest

from repro.detection.corpus import TestCorpus
from repro.fleet.lifecycle import RmaTracker, burn_in
from repro.fleet.machine import Machine
from repro.fleet.population import FleetBuilder, ground_truth_map
from repro.fleet.product import (
    CpuProduct,
    DEFAULT_PRODUCTS,
    blended_machine_prevalence,
)
from repro.silicon.aging import WeibullOnset
from repro.silicon.catalog import named_case
from repro.silicon.core import Chip, Core


class TestProducts:
    def test_default_portfolio_sane(self):
        assert len(DEFAULT_PRODUCTS) >= 3
        for product in DEFAULT_PRODUCTS:
            assert product.cores_per_machine >= 16
            assert 0 < product.core_prevalence < 1e-3

    def test_machine_prevalence_exceeds_core_prevalence(self):
        product = DEFAULT_PRODUCTS[0]
        assert product.machine_prevalence > product.core_prevalence

    def test_newer_nodes_have_higher_prevalence(self):
        prevalences = [p.core_prevalence for p in DEFAULT_PRODUCTS]
        assert prevalences == sorted(prevalences)

    def test_blended_prevalence_in_paper_band(self):
        """'a few mercurial cores per several thousand machines'."""
        per_kmachine = blended_machine_prevalence() * 1000
        assert 0.2 <= per_kmachine <= 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuProduct("v", "s", cores_per_machine=0, core_prevalence=0.1)
        with pytest.raises(ValueError):
            CpuProduct("v", "s", cores_per_machine=4, core_prevalence=2.0)


class TestFleetBuilder:
    def test_deterministic_under_seed(self):
        a_machines, a_truth = FleetBuilder(seed=5).build(200)
        b_machines, b_truth = FleetBuilder(seed=5).build(200)
        assert a_truth.mercurial_core_ids == b_truth.mercurial_core_ids
        assert [m.product.sku for m in a_machines] == \
            [m.product.sku for m in b_machines]

    def test_ground_truth_matches_cores(self):
        machines, truth = FleetBuilder(seed=3).build(300)
        actual = {
            core.core_id
            for machine in machines
            for core in machine.cores
            if core.is_mercurial
        }
        assert actual == truth.mercurial_core_ids

    def test_incidence_scales_with_prevalence(self):
        dense = [
            CpuProduct("v", "dense", 32, core_prevalence=5e-3,
                       onset=WeibullOnset())
        ]
        machines, truth = FleetBuilder(products=dense, seed=1).build(300)
        assert truth.n_mercurial > 10

    def test_deployment_window(self):
        builder = FleetBuilder(seed=2, deployment_window=(-100.0, 50.0))
        machines, _ = builder.build(100)
        deploys = [m.deploy_day for m in machines]
        assert min(deploys) >= -100.0 and max(deploys) <= 50.0

    def test_technology_refresh_orders_deployments(self):
        builder = FleetBuilder(
            seed=4, deployment_window=(0.0, 1000.0), technology_refresh=True
        )
        machines, _ = builder.build(800)
        by_product: dict[str, list[float]] = {}
        for machine in machines:
            by_product.setdefault(machine.product.sku, []).append(
                machine.deploy_day
            )
        means = [
            sum(by_product[p.sku]) / len(by_product[p.sku])
            for p in DEFAULT_PRODUCTS
            if p.sku in by_product
        ]
        assert means == sorted(means)  # newer SKUs deploy later on average

    def test_ground_truth_map(self):
        machines, truth = FleetBuilder(seed=6).build(100)
        truth_map = ground_truth_map(machines)
        assert sum(truth_map.values()) == truth.n_mercurial

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            FleetBuilder(deployment_window=(10.0, 0.0))

    def test_needs_positive_machines(self):
        with pytest.raises(ValueError):
            FleetBuilder().build(0)


class TestMachine:
    def _machine(self, defective=False):
        cores = [Core(f"mx/c{i}", rng=np.random.default_rng(i)) for i in range(4)]
        if defective:
            cores[2] = Core(
                "mx/c2", defects=named_case("string_bit_flipper"),
                rng=np.random.default_rng(9),
            )
        return Machine("mx", DEFAULT_PRODUCTS[0], Chip(cores), deploy_day=-30.0)

    def test_age_days(self):
        machine = self._machine()
        assert machine.age_days(now_days=70.0) == 100.0

    def test_advance_to_syncs_core_ages(self):
        machine = self._machine()
        machine.advance_to(20.0)
        assert all(core.age_days == 50.0 for core in machine.cores)

    def test_mercurial_detection(self):
        assert not self._machine().is_mercurial
        assert self._machine(defective=True).is_mercurial

    def test_online_cores_excludes_quarantined(self):
        machine = self._machine()
        machine.cores[0].set_online(False)
        assert len(machine.online_cores()) == 3


class TestLifecycle:
    def test_burn_in_rejects_day_zero_defect(self):
        machine = self._machine_with_defect()
        report = burn_in(machine, corpus=TestCorpus.minimal(), repetitions=2)
        assert report.rejected
        assert "bi/c1" in report.confessing_cores

    def test_burn_in_passes_healthy_machine(self):
        cores = [Core(f"bh/c{i}", rng=np.random.default_rng(i)) for i in range(2)]
        machine = Machine("bh", DEFAULT_PRODUCTS[0], Chip(cores))
        report = burn_in(machine, corpus=TestCorpus.minimal())
        assert not report.rejected

    def test_burn_in_misses_latent_defect(self):
        """Late-onset defects pass burn-in: §6's reason post-deployment
        screening must exist."""
        from repro.silicon.aging import AgingProfile
        from repro.silicon.defects import StuckBitDefect
        from repro.silicon.units import FunctionalUnit

        latent = StuckBitDefect(
            "latent", bit=3, base_rate=1e-2, unit=FunctionalUnit.ALU,
            aging=AgingProfile(onset_days=500.0),
        )
        cores = [
            Core("bl/c0", defects=[latent], rng=np.random.default_rng(0)),
        ]
        machine = Machine("bl", DEFAULT_PRODUCTS[0], Chip(cores))
        report = burn_in(machine, corpus=TestCorpus.minimal())
        assert not report.rejected  # escapes into the fleet

    def test_rma_tracker(self):
        tracker = RmaTracker(machine_cost_units=2.0, lead_time_days=20.0)
        tracker.pull(3)
        assert tracker.replacement_cost == 6.0
        assert tracker.capacity_gap_machinedays == 60.0

    def _machine_with_defect(self):
        cores = [
            Core("bi/c0", rng=np.random.default_rng(0)),
            Core("bi/c1", defects=named_case("string_bit_flipper"),
                 rng=np.random.default_rng(1)),
        ]
        return Machine("bi", DEFAULT_PRODUCTS[0], Chip(cores))
