"""Second property-test battery: invariants of the defense stack."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.confidence import SuspicionTracker
from repro.core.policy import Action, PolicyConfig, QuarantinePolicy
from repro.mitigation.resilient.matfact import GF_PRIME, _gf_mul
from repro.silicon.assembler import assemble
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.environment import DvfsTable
from repro.silicon.sensitivity import (
    ComposedSensitivity,
    FrequencySensitivity,
    ThermalSensitivity,
    VoltageMarginSensitivity,
)
from repro.silicon.units import FunctionalUnit, Op
from repro.silicon.vm import Vm

gf_element = st.integers(min_value=0, max_value=GF_PRIME - 1)


def _core(seed=0):
    return Core("propx/h", rng=np.random.default_rng(seed))


class TestGfFieldAxioms:
    @settings(max_examples=40, deadline=None)
    @given(a=gf_element, b=gf_element, c=gf_element)
    def test_mul_associative(self, a, b, c):
        core = _core()
        left = _gf_mul(core, _gf_mul(core, a, b), c)
        right = _gf_mul(core, a, _gf_mul(core, b, c))
        assert left == right

    @settings(max_examples=40, deadline=None)
    @given(a=gf_element, b=gf_element)
    def test_mul_commutative(self, a, b):
        core = _core()
        assert _gf_mul(core, a, b) == _gf_mul(core, b, a)

    @settings(max_examples=40, deadline=None)
    @given(a=gf_element)
    def test_one_is_identity(self, a):
        assert _gf_mul(_core(), a, 1) == a % GF_PRIME


class TestSuspicionInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(st.floats(min_value=0.1, max_value=5.0),
                         min_size=1, max_size=15),
        half_life=st.floats(min_value=1.0, max_value=100.0),
    )
    def test_score_never_negative_and_bounded_by_sum(self, weights, half_life):
        tracker = SuspicionTracker(half_life_days=half_life, source_bonus=0.0)
        for index, weight in enumerate(weights):
            tracker.record("c", now_days=float(index), weight=weight)
        score = tracker.score("c", now_days=float(len(weights)))
        assert 0.0 <= score <= sum(weights) + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(gap=st.floats(min_value=0.0, max_value=500.0))
    def test_decay_monotone_in_time(self, gap):
        tracker = SuspicionTracker(half_life_days=10.0)
        tracker.record("c", now_days=0.0, weight=4.0)
        now = tracker.score("c", 0.0)
        later = tracker.score("c", gap)
        assert later <= now + 1e-9


class TestPolicyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        score=st.floats(min_value=0.0, max_value=100.0),
        confessed=st.booleans(),
    )
    def test_decision_is_total_and_consistent(self, score, confessed):
        policy = QuarantinePolicy(PolicyConfig(), fleet_cores=1000)
        decision = policy.decide("m0/c0", score, confessed=confessed)
        assert decision.action in Action
        if decision.action in (Action.QUARANTINE_CORE,
                               Action.QUARANTINE_MACHINE):
            # quarantine requires either a confession or a high score
            assert confessed or score >= PolicyConfig().quarantine_threshold

    @settings(max_examples=20, deadline=None)
    @given(scores=st.lists(st.floats(min_value=6.0, max_value=50.0),
                           min_size=1, max_size=30))
    def test_quarantine_never_exceeds_budget(self, scores):
        config = PolicyConfig(max_quarantined_fraction=0.01)
        policy = QuarantinePolicy(config, fleet_cores=200)
        for index, score in enumerate(scores):
            policy.decide(f"m{index:03d}/c00", score, confessed=True)
        assert len(policy.quarantined) <= max(
            1, int(config.max_quarantined_fraction * 200) + 1
        )


class TestSensitivityInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        freq_factor=st.floats(min_value=1.1, max_value=8.0),
        volt_factor=st.floats(min_value=1.1, max_value=5.0),
        thermal_factor=st.floats(min_value=1.1, max_value=3.0),
    )
    def test_multipliers_always_positive(self, freq_factor, volt_factor,
                                         thermal_factor):
        sensitivity = ComposedSensitivity([
            FrequencySensitivity(freq_factor),
            VoltageMarginSensitivity(volt_factor),
            ThermalSensitivity(thermal_factor),
        ])
        for index in range(len(DvfsTable().states)):
            point = DvfsTable().operating_point(index)
            assert sensitivity.multiplier(point) > 0.0


class TestVmDeterminism:
    PROGRAM = """
        li r1, 37
        li r2, 0
        li r5, 1
    loop:
        mul r3, r1, r1
        xor r2, r2, r3
        sub r1, r1, r5
        bne r1, r0, loop
        halt
    """

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_healthy_vm_output_independent_of_rng(self, seed):
        program = assemble(self.PROGRAM)
        result = Vm(Core("vmx/h", rng=np.random.default_rng(seed))).run(program)
        baseline = Vm(_core()).run(program)
        assert result.registers == baseline.registers

    @settings(max_examples=15, deadline=None)
    @given(bit=st.integers(min_value=0, max_value=63))
    def test_deterministic_defect_reproducible(self, bit):
        """Same defect + same rng seed ⇒ identical corrupted run —
        the property that makes confession testing meaningful."""
        def run_once():
            core = Core(
                "vmx/bad",
                defects=[StuckBitDefect("d", bit=bit, base_rate=0.05,
                                        unit=FunctionalUnit.MUL_DIV)],
                rng=np.random.default_rng(99),
            )
            return Vm(core).run(assemble(self.PROGRAM)).registers

        assert run_once() == run_once()


class TestDefectRateBounds:
    @settings(max_examples=40, deadline=None)
    @given(
        rate=st.floats(min_value=0.0, max_value=1.0),
        age=st.floats(min_value=0.0, max_value=5000.0),
    )
    def test_effective_rate_is_probability(self, rate, age):
        defect = StuckBitDefect("d", bit=1, base_rate=rate, ops=(Op.ADD,))
        from repro.silicon.environment import NOMINAL

        effective = defect.effective_rate(Op.ADD, NOMINAL, age)
        assert 0.0 <= effective <= 1.0
