"""Open-loop load generation: profiles, cohorts, and determinism."""

import numpy as np
import pytest

from repro.serving.loadgen import (
    DEFAULT_COHORTS,
    LoadGenerator,
    LoadPhase,
    LoadProfile,
    UserCohort,
)


class TestUserCohort:
    def test_rejects_non_positive_weight(self):
        with pytest.raises(ValueError):
            UserCohort("bad", weight=0.0)

    def test_rejects_empty_user_space(self):
        with pytest.raises(ValueError):
            UserCohort("bad", n_users=0)

    def test_default_population_has_interactive_and_batch(self):
        names = {c.name for c in DEFAULT_COHORTS}
        assert names == {"interactive", "batch"}
        interactive = next(c for c in DEFAULT_COHORTS if c.name == "interactive")
        batch = next(c for c in DEFAULT_COHORTS if c.name == "batch")
        # latency-sensitive traffic dominates and has the tighter budget
        assert interactive.weight > batch.weight
        assert interactive.deadline_ms < batch.deadline_ms


class TestLoadPhase:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            LoadPhase(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            LoadPhase(10, -1.0, 1.0)

    def test_interpolates_linearly_between_endpoints(self):
        phase = LoadPhase(5, 2.0, 10.0)
        assert phase.rate_at(0) == 2.0
        assert phase.rate_at(4) == 10.0
        assert phase.rate_at(2) == 6.0

    def test_single_tick_phase_is_a_point(self):
        assert LoadPhase(1, 3.0, 9.0).rate_at(0) == 3.0


class TestLoadProfile:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(ValueError):
            LoadProfile([])

    def test_steady_is_flat_and_holds_past_the_end(self):
        profile = LoadProfile.steady(4.0, ticks=10)
        assert profile.total_ticks == 10
        assert all(profile.rate_at(t) == 4.0 for t in range(20))

    def test_ramp_covers_exactly_the_requested_ticks(self):
        profile = LoadProfile.ramp(2.0, 10.0, ticks=100)
        assert profile.total_ticks == 100

    def test_ramp_warms_up_peaks_and_cools_down(self):
        profile = LoadProfile.ramp(2.0, 10.0, ticks=100)
        assert profile.rate_at(0) == 2.0              # warm plateau
        assert profile.rate_at(60) == 10.0            # hold at peak
        assert profile.rate_at(99) == 2.0             # cooled back down
        # the climb is monotone
        climb = [profile.rate_at(t) for t in range(20, 50)]
        assert climb == sorted(climb)


class TestLoadGenerator:
    def _stream(self, seed, ticks=40, burst=1.0):
        gen = LoadGenerator(
            LoadProfile.ramp(4.0, 12.0, ticks), seed=seed
        )
        out = []
        for tick in range(ticks):
            for req in gen.arrivals(tick, burst):
                out.append((
                    req.request_id, req.payload, req.route_key,
                    req.cohort, req.deadline_ms, req.arrival_tick,
                ))
        return out

    def test_needs_at_least_one_cohort(self):
        with pytest.raises(ValueError):
            LoadGenerator(LoadProfile.steady(1.0, 10), cohorts=())

    def test_same_seed_produces_byte_identical_streams(self):
        assert self._stream(seed=9) == self._stream(seed=9)

    def test_different_seeds_produce_different_streams(self):
        assert self._stream(seed=9) != self._stream(seed=10)

    def test_request_ids_are_sequential(self):
        stream = self._stream(seed=3)
        assert [r[0] for r in stream] == list(range(len(stream)))

    def test_zero_rate_generates_nothing(self):
        gen = LoadGenerator(LoadProfile.steady(0.0, 10), seed=0)
        assert all(gen.arrivals(t) == [] for t in range(10))
        assert gen.generated == 0

    def test_burst_multiplier_zero_silences_the_tick(self):
        gen = LoadGenerator(LoadProfile.steady(50.0, 10), seed=0)
        assert gen.arrivals(0, burst_multiplier=0.0) == []

    def test_burst_multiplier_scales_the_arrival_rate(self):
        quiet = LoadGenerator(LoadProfile.steady(5.0, 200), seed=1)
        loud = LoadGenerator(LoadProfile.steady(5.0, 200), seed=1)
        n_quiet = sum(len(quiet.arrivals(t, 1.0)) for t in range(200))
        n_loud = sum(len(loud.arrivals(t, 3.0)) for t in range(200))
        assert n_loud > 2 * n_quiet

    def test_open_loop_arrivals_ignore_consumer_behaviour(self):
        # The defining property: the request stream is a function of
        # (seed, tick sequence) alone.  A "consumer" that drops every
        # request sees the identical stream as one that serves them.
        assert self._stream(seed=5) == self._stream(seed=5)

    def test_cohort_key_spaces_are_disjoint(self):
        gen = LoadGenerator(LoadProfile.steady(20.0, 60), seed=2)
        keys = {"interactive": set(), "batch": set()}
        for tick in range(60):
            for req in gen.arrivals(tick):
                keys[req.cohort].add(req.route_key)
        assert keys["batch"] and keys["interactive"]
        # cohorts sort by name: batch owns [0, 64), interactive the rest
        assert max(keys["batch"]) < 64
        assert min(keys["interactive"]) >= 64
        assert not keys["batch"] & keys["interactive"]

    def test_payload_size_and_deadline_follow_the_cohort(self):
        sizes = {c.name: c.payload_bytes for c in DEFAULT_COHORTS}
        deadlines = {c.name: c.deadline_ms for c in DEFAULT_COHORTS}
        gen = LoadGenerator(LoadProfile.steady(20.0, 30), seed=4)
        for tick in range(30):
            for req in gen.arrivals(tick):
                assert len(req.payload) == sizes[req.cohort]
                assert req.deadline_ms == deadlines[req.cohort]
                assert req.arrival_tick == tick

    def test_poisson_mean_tracks_the_profile_rate(self):
        gen = LoadGenerator(LoadProfile.steady(8.0, 500), seed=6)
        counts = [len(gen.arrivals(t)) for t in range(500)]
        assert abs(float(np.mean(counts)) - 8.0) < 0.5
