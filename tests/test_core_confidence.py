"""Suspicion tracking and Bayesian posterior."""

import pytest

from repro.core.confidence import SuspicionTracker, posterior_mercurial


class TestSuspicionTracker:
    def test_recidivism_accumulates(self):
        tracker = SuspicionTracker()
        for _ in range(3):
            tracker.record("m0/c0", now_days=0.0)
        assert tracker.score("m0/c0", 0.0) == pytest.approx(3.0)

    def test_decay_halves_per_half_life(self):
        tracker = SuspicionTracker(half_life_days=10.0)
        tracker.record("m0/c0", now_days=0.0, weight=4.0)
        assert tracker.score("m0/c0", 10.0) == pytest.approx(2.0)
        assert tracker.score("m0/c0", 20.0) == pytest.approx(1.0)

    def test_distinct_source_bonus(self):
        tracker = SuspicionTracker(source_bonus=0.5)
        tracker.record("m0/c0", 0.0, source="app-a")
        base = tracker.score("m0/c0", 0.0)
        tracker.record("m0/c0", 0.0, source="app-b")
        assert tracker.score("m0/c0", 0.0) == pytest.approx(base + 1.0 + 0.5)

    def test_same_source_gets_no_bonus(self):
        tracker = SuspicionTracker(source_bonus=0.5)
        tracker.record("m0/c0", 0.0, source="app-a")
        tracker.record("m0/c0", 0.0, source="app-a")
        assert tracker.score("m0/c0", 0.0) == pytest.approx(2.0)

    def test_suspects_sorted_and_thresholded(self):
        tracker = SuspicionTracker()
        tracker.record("a", 0.0, weight=5.0)
        tracker.record("b", 0.0, weight=1.0)
        tracker.record("c", 0.0, weight=3.0)
        suspects = tracker.suspects(0.0, threshold=2.0)
        assert [core for core, _ in suspects] == ["a", "c"]

    def test_unknown_core_scores_zero(self):
        assert SuspicionTracker().score("nope", 0.0) == 0.0

    def test_signal_count_does_not_decay(self):
        tracker = SuspicionTracker(half_life_days=1.0)
        tracker.record("a", 0.0)
        tracker.score("a", 100.0)
        assert tracker.signals("a") == 1

    def test_invalid_half_life(self):
        with pytest.raises(ValueError):
            SuspicionTracker(half_life_days=0.0)


class TestPosterior:
    def test_no_signals_low_posterior(self):
        p = posterior_mercurial(
            signals=0, observation_days=30.0,
            background_rate_per_day=0.01, mercurial_rate_per_day=1.0,
        )
        assert p < 1e-3

    def test_many_signals_high_posterior(self):
        p = posterior_mercurial(
            signals=20, observation_days=30.0,
            background_rate_per_day=0.01, mercurial_rate_per_day=1.0,
        )
        assert p > 0.99

    def test_posterior_monotone_in_signals(self):
        values = [
            posterior_mercurial(
                signals=k, observation_days=30.0,
                background_rate_per_day=0.01, mercurial_rate_per_day=0.5,
            )
            for k in range(0, 10)
        ]
        assert values == sorted(values)

    def test_zero_observation_returns_prior(self):
        assert posterior_mercurial(
            signals=0, observation_days=0.0,
            background_rate_per_day=0.01, mercurial_rate_per_day=1.0,
            prior=0.005,
        ) == 0.005

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            posterior_mercurial(1, 1.0, 0.0, 1.0)
