"""B-tree database and replica divergence."""

import numpy as np
import pytest

from repro.silicon.catalog import named_case
from repro.silicon.core import Core
from repro.workloads.database import (
    BTreeIndex,
    Replica,
    ReplicatedDb,
    database_workload,
    probe_replica,
)


class TestBTree:
    def test_insert_get_roundtrip(self, healthy_core):
        index = BTreeIndex(healthy_core)
        for key in (5, 1, 9, 3, 7):
            index.insert(key, key * 10)
        for key in (5, 1, 9, 3, 7):
            assert index.get(key) == key * 10

    def test_missing_key_returns_none(self, healthy_core):
        index = BTreeIndex(healthy_core)
        index.insert(1, 10)
        assert index.get(2) is None

    def test_overwrite_updates_value(self, healthy_core):
        index = BTreeIndex(healthy_core)
        index.insert(1, 10)
        index.insert(1, 20)
        assert index.get(1) == 20

    def test_many_keys_force_splits(self, healthy_core, rng):
        index = BTreeIndex(healthy_core)
        keys = [int(k) for k in rng.permutation(500)]
        for key in keys:
            index.insert(key, key + 1)
        assert not index.root.is_leaf  # tree actually grew
        for key in keys:
            assert index.get(key) == key + 1

    def test_items_in_order(self, healthy_core, rng):
        index = BTreeIndex(healthy_core)
        keys = [int(k) for k in rng.permutation(200)]
        for key in keys:
            index.insert(key, 0)
        assert [k for k, _ in index.items()] == sorted(keys)

    def test_order_invariant_on_healthy_tree(self, healthy_core, rng):
        index = BTreeIndex(healthy_core)
        for key in rng.permutation(300):
            index.insert(int(key), 0)
        assert index.check_order_invariant()


class TestReplica:
    def test_record_embeds_key(self, healthy_core):
        replica = Replica(healthy_core)
        replica.insert(42, payload=(42, 1))
        record = replica.get(42)
        assert record is not None and record.key == 42

    def test_probe_clean_on_healthy(self, healthy_core, rng):
        replica = Replica(healthy_core)
        keys = [int(k) for k in rng.integers(0, 2**30, 200)]
        for key in keys:
            replica.insert(key, (key,))
        stats = probe_replica(replica, keys[::2])
        assert stats.error_fraction == 0.0


class TestReplicaDivergence:
    def test_queries_depend_on_serving_replica(self, rng):
        """§2: corruption 'depending on which replica (core) serves
        them' — the defective replica has errors, the healthy do not."""
        bad = Core(
            "db/bad", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(0),
        )
        db = ReplicatedDb([
            Core("db/r0", rng=np.random.default_rng(1)),
            bad,
            Core("db/r2", rng=np.random.default_rng(2)),
        ])
        keys = [int(k) for k in rng.integers(0, 2**40, 400)]
        for key in keys:
            db.insert(key, (key,))
        probes = keys[::2]
        errors = [
            probe_replica(db.replicas[i], probes).error_fraction
            for i in range(3)
        ]
        assert errors[0] == 0.0 and errors[2] == 0.0
        assert errors[1] > 0.0

    def test_replicated_db_needs_cores(self):
        with pytest.raises(ValueError):
            ReplicatedDb([])

    def test_query_wraps_replica_index(self, healthy_core):
        db = ReplicatedDb([healthy_core, healthy_core])
        db.insert(1, (1,))
        assert db.query(1, 5).key == 1


class TestDatabaseWorkload:
    def test_healthy_clean(self, healthy_core, rng):
        keys = [int(k) for k in rng.integers(0, 2**30, 100)]
        result = database_workload(healthy_core, keys, keys[::3])
        assert not result.app_detected

    def test_defective_comparator_detected(self, rng):
        core = Core(
            "db/wl", defects=named_case("comparator_flip"),
            rng=np.random.default_rng(4),
        )
        keys = [int(k) for k in rng.integers(0, 2**40, 200)]
        result = database_workload(core, keys, keys)
        assert result.app_detected
