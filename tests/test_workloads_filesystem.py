"""Mini filesystem and GC data loss."""

import numpy as np
import pytest

from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit
from repro.workloads.filesystem import BLOCK_BYTES, FsError, MiniFs, filesystem_workload


class TestHealthyFs:
    def test_write_read_roundtrip(self, healthy_core):
        fs = MiniFs(healthy_core)
        fs.write_file("a", b"hello world")
        assert fs.read_file("a") == b"hello world"

    def test_multiblock_file(self, healthy_core):
        fs = MiniFs(healthy_core)
        data = b"x" * (3 * BLOCK_BYTES + 7)
        fs.write_file("big", data)
        assert fs.read_file("big") == data

    def test_overwrite_frees_old_blocks(self, healthy_core):
        fs = MiniFs(healthy_core, n_blocks=8)
        fs.write_file("a", b"y" * (4 * BLOCK_BYTES))
        fs.write_file("a", b"z" * (4 * BLOCK_BYTES))  # would ENOSPC if leaked
        assert fs.read_file("a") == b"z" * (4 * BLOCK_BYTES)

    def test_delete(self, healthy_core):
        fs = MiniFs(healthy_core)
        fs.write_file("a", b"data")
        fs.delete("a")
        with pytest.raises(FsError):
            fs.read_file("a")

    def test_out_of_space(self, healthy_core):
        fs = MiniFs(healthy_core, n_blocks=2)
        with pytest.raises(FsError):
            fs.write_file("big", b"x" * (5 * BLOCK_BYTES))

    def test_missing_file(self, healthy_core):
        with pytest.raises(FsError):
            MiniFs(healthy_core).read_file("nope")

    def test_gc_on_healthy_fs_loses_nothing(self, healthy_core):
        fs = MiniFs(healthy_core)
        fs.write_file("a", b"a" * 100)
        fs.write_file("b", b"b" * 200)
        fs.gc()
        assert fs.lost_blocks == 0
        assert fs.read_file("a") == b"a" * 100

    def test_fsck_clean(self, healthy_core):
        fs = MiniFs(healthy_core)
        fs.write_file("a", b"data")
        assert fs.fsck() == []


class TestGcDataLoss:
    def _gc_core(self, seed=0, rate=8e-3):
        return Core(
            "fs/bad",
            defects=[
                StuckBitDefect("d", bit=3, mode="flip", base_rate=rate,
                               unit=FunctionalUnit.LOAD_STORE)
            ],
            rng=np.random.default_rng(seed),
        )

    def test_corrupted_mark_phase_loses_live_data(self, rng):
        """§2: 'corruption affecting garbage collection ... causing
        live data to be lost'."""
        lost_any = False
        for seed in range(5):
            fs = MiniFs(self._gc_core(seed), n_blocks=2048)
            for index in range(15):
                fs.write_file(f"f{index}", bytes([index]) * 250)
            for _ in range(8):
                fs.gc()
            if fs.lost_blocks > 0:
                lost_any = True
                break
        assert lost_any

    def test_loss_is_detected_only_at_read_time(self):
        """The loss is silent until a reader hits the checksum — the
        wrong-answer-detected-too-late symptom class."""
        for seed in range(8):
            fs = MiniFs(self._gc_core(seed, rate=2e-2), n_blocks=2048)
            data = {f"f{i}": bytes([i + 1]) * 250 for i in range(15)}
            for name, content in data.items():
                fs.write_file(name, content)
            for _ in range(6):
                fs.gc()
            if fs.lost_blocks == 0:
                continue
            failures = 0
            for name, content in data.items():
                try:
                    assert fs.read_file(name) == content
                except (FsError, AssertionError):
                    failures += 1
            assert failures > 0
            return
        pytest.fail("no GC loss induced in any seed")


class TestFilesystemWorkload:
    def test_healthy_clean(self, healthy_core):
        files = {f"f{i}": bytes([i]) * 120 for i in range(5)}
        result = filesystem_workload(healthy_core, files)
        assert not result.app_detected and not result.crashed
