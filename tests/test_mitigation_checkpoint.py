"""Checkpoint/restart runtime."""

import numpy as np
import pytest

from repro.mitigation.checkpoint import (
    CheckpointRuntime,
    GranuleFailedError,
)
from repro.silicon.core import Core
from repro.silicon.defects import StuckBitDefect
from repro.silicon.units import FunctionalUnit, Op


def _step(core, state, item):
    return state + [core.execute(Op.ADD, state[-1] if state else 0, item)]


def _check(state):
    # prefix sums must be non-decreasing for non-negative items
    return all(b >= a for a, b in zip(state, state[1:]))


def _bad_core(rate=0.1, seed=0):
    return Core(
        "cp/bad",
        defects=[StuckBitDefect("d", bit=62, base_rate=rate,
                                unit=FunctionalUnit.ALU)],
        rng=np.random.default_rng(seed),
    )


class TestHealthyRun:
    def test_processes_all_items(self, healthy_pool):
        runtime = CheckpointRuntime(
            healthy_pool, step=_step, check=_check, granule=4
        )
        state = runtime.run([], list(range(1, 17)))
        assert len(state) == 16
        assert runtime.stats.granules_committed == 4
        assert runtime.stats.granules_retried == 0
        assert runtime.stats.items_wasted == 0

    def test_overhead_near_one_when_clean(self, healthy_pool):
        runtime = CheckpointRuntime(
            healthy_pool, step=_step, check=_check,
            granule=8, checkpoint_cost_items=0.5,
        )
        runtime.run([], list(range(1, 17)))
        assert runtime.stats.overhead_factor == pytest.approx(
            (16 + 1.0) / 16
        )


class TestRetryOnFailure:
    def test_failed_granule_retries_on_next_core(self, healthy_pool):
        pool = [_bad_core(rate=1.0)] + healthy_pool
        runtime = CheckpointRuntime(pool, step=_step, check=_check, granule=4)
        state = runtime.run([], list(range(1, 9)))
        assert len(state) == 8
        assert runtime.stats.granules_retried >= 1
        assert runtime.stats.items_wasted >= 4

    def test_all_cores_failing_raises(self):
        pool = [_bad_core(rate=1.0, seed=i) for i in range(2)]
        runtime = CheckpointRuntime(
            pool, step=_step, check=_check, granule=4,
            max_attempts_per_granule=2,
        )
        with pytest.raises(GranuleFailedError):
            runtime.run([], list(range(1, 9)))

    def test_final_state_correct_despite_retries(self, healthy_pool):
        pool = [_bad_core(rate=0.05)] + healthy_pool
        items = list(range(1, 33))
        runtime = CheckpointRuntime(pool, step=_step, check=_check, granule=4)
        state = runtime.run([], items)
        expected = []
        total = 0
        for item in items:
            total += item
            expected.append(total)
        assert state == expected


class TestGranuleTradeoff:
    def test_small_granules_waste_less_per_retry(self):
        def run_with(granule):
            pool = [_bad_core(rate=0.02, seed=9)] + [
                Core(f"cp/h{i}", rng=np.random.default_rng(50 + i))
                for i in range(3)
            ]
            runtime = CheckpointRuntime(
                pool, step=_step, check=_check, granule=granule
            )
            runtime.run([], list(range(1, 65)))
            return runtime.stats

        small = run_with(4)
        large = run_with(32)
        if small.granules_retried and large.granules_retried:
            waste_small = small.items_wasted / small.granules_retried
            waste_large = large.items_wasted / large.granules_retried
            assert waste_small < waste_large

    def test_validation(self, healthy_pool):
        with pytest.raises(ValueError):
            CheckpointRuntime([], step=_step, check=_check)
        with pytest.raises(ValueError):
            CheckpointRuntime(healthy_pool, step=_step, check=_check, granule=0)
