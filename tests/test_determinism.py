"""Seed discipline: every campaign is a pure function of its seeds.

Reproducibility is the whole point of simulated silicon — a mercurial
core you cannot re-run is as unhelpful as a real one.  These tests pin
the contract: rebuilding the fleet and simulator with the same seeds
reproduces the campaign event-for-event; changing the seed changes the
event stream.
"""

import dataclasses

from repro.fleet.population import FleetBuilder
from repro.fleet.product import DEFAULT_PRODUCTS
from repro.fleet.simulator import FleetSimulator, SimulatorConfig


def _run(build_seed=11, sim_seed=3):
    # The fleet must be rebuilt per run: the simulator mutates cores
    # (aging, quarantine set_online), so reusing machines would leak
    # state between runs and mask nondeterminism.
    products = tuple(
        dataclasses.replace(p, core_prevalence=p.core_prevalence * 40.0)
        for p in DEFAULT_PRODUCTS
    )
    machines, truth = FleetBuilder(
        products=products, seed=build_seed,
        deployment_window=(-700.0, 0.0),
    ).build(150)
    config = SimulatorConfig(horizon_days=60.0, warmup_days=0.0)
    return FleetSimulator(machines, truth, config, seed=sim_seed).run()


def _event_stream(result):
    return [
        (e.time_days, e.machine_id, e.core_id, e.kind, e.reporter, e.detail)
        for e in result.events
    ]


class TestSameSeed:
    def test_identical_event_streams(self):
        first, second = _run(), _run()
        assert len(first.events) == len(second.events)
        assert _event_stream(first) == _event_stream(second)

    def test_identical_quarantine_outcome(self):
        first, second = _run(), _run()
        assert first.quarantined_cores == second.quarantined_cores
        assert first.quarantine_day == second.quarantine_day
        assert first.detection_latency_days == second.detection_latency_days

    def test_identical_aggregate_counters(self):
        first, second = _run(), _run()
        assert first.total_corruptions == second.total_corruptions
        assert first.app_visible_corruptions == second.app_visible_corruptions
        assert first.screening_ops_spent == second.screening_ops_spent


class TestDifferentSeed:
    def test_simulator_seed_changes_the_event_stream(self):
        first = _run(sim_seed=3)
        second = _run(sim_seed=4)
        assert _event_stream(first) != _event_stream(second)

    def test_build_seed_changes_the_fleet(self):
        first = _run(build_seed=11)
        second = _run(build_seed=12)
        assert _event_stream(first) != _event_stream(second)


class TestWorkerInvariance:
    """Scorecards are a function of the seed, not the worker layout.

    The parallel engine derives every trial seed from the root seed up
    front (SeedSequence.spawn) and gathers results in submission order,
    so fanning the same campaign across 1 or N processes must produce
    bit-identical aggregates.
    """

    def test_e1_trials_identical_across_worker_counts(self):
        from repro.analysis.experiments import run_incidence

        kwargs = dict(n_machines=150, seed=7, horizon_days=30.0, n_trials=3)
        serial = run_incidence(workers=1, **kwargs)
        pooled = run_incidence(workers=3, **kwargs)
        assert serial["per_trial"] == pooled["per_trial"]
        assert serial["rendered"] == pooled["rendered"]
        assert serial == pooled

    def test_e16_scorecards_identical_across_worker_counts(self):
        from repro.analysis.experiments import run_storage_under_cee

        serial = run_storage_under_cee(ticks=60, workers=1)
        pooled = run_storage_under_cee(ticks=60, workers=2)
        assert serial["rendered"] == pooled["rendered"]
        arms = (
            "unprotected", "quorum_only", "no_encrypt_verify",
            "generic_weights", "protected",
        )
        for arm in arms:
            assert serial[arm].to_json() == pooled[arm].to_json(), arm
